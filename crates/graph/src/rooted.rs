//! Rooted, oriented trees.
//!
//! The paper's subroutines (`TreeToStar`, `LineToCompleteBinaryTree`)
//! assume nodes have a *sense of orientation*: every node can distinguish
//! its parent from its children. [`RootedTree`] is that oriented view.

use crate::{Graph, GraphError, NodeId};
use std::collections::VecDeque;

/// A rooted tree over the vertex set `0..n`, stored as a parent map plus
/// derived children lists and depths.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RootedTree {
    root: NodeId,
    parent: Vec<Option<NodeId>>,
    children: Vec<Vec<NodeId>>,
    depth: Vec<usize>,
}

impl RootedTree {
    /// Builds a rooted tree from a parent map (`parent[root] == None`).
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NotATree`] if the parent map does not describe
    /// a tree rooted at `root` spanning all `n` nodes (cycles, multiple
    /// roots, unreachable nodes, out-of-range parents).
    pub fn from_parents(root: NodeId, parent: Vec<Option<NodeId>>) -> Result<Self, GraphError> {
        let n = parent.len();
        if root.index() >= n {
            return Err(GraphError::NotATree {
                reason: format!("root {root} out of range for {n} nodes"),
            });
        }
        if parent[root.index()].is_some() {
            return Err(GraphError::NotATree {
                reason: "root must not have a parent".into(),
            });
        }
        for (i, p) in parent.iter().enumerate() {
            if let Some(p) = p {
                if p.index() >= n {
                    return Err(GraphError::NotATree {
                        reason: format!("parent of v{i} out of range"),
                    });
                }
                if p.index() == i {
                    return Err(GraphError::NotATree {
                        reason: format!("v{i} is its own parent"),
                    });
                }
            } else if i != root.index() {
                return Err(GraphError::NotATree {
                    reason: format!("non-root v{i} has no parent"),
                });
            }
        }
        let mut children = vec![Vec::new(); n];
        for (i, p) in parent.iter().enumerate() {
            if let Some(p) = p {
                children[p.index()].push(NodeId(i));
            }
        }
        for c in &mut children {
            c.sort();
        }
        // BFS from the root to compute depths and detect unreachable nodes
        // (which would indicate a cycle among non-root nodes).
        let mut depth = vec![usize::MAX; n];
        let mut queue = VecDeque::new();
        depth[root.index()] = 0;
        queue.push_back(root);
        let mut visited = 1usize;
        while let Some(u) = queue.pop_front() {
            for &c in &children[u.index()] {
                if depth[c.index()] != usize::MAX {
                    return Err(GraphError::NotATree {
                        reason: format!("node {c} reached twice (cycle)"),
                    });
                }
                depth[c.index()] = depth[u.index()] + 1;
                visited += 1;
                queue.push_back(c);
            }
        }
        if visited != n {
            return Err(GraphError::NotATree {
                reason: "cycle detected: some nodes are unreachable from the root".into(),
            });
        }
        Ok(RootedTree {
            root,
            parent,
            children,
            depth,
        })
    }

    /// Roots an undirected tree/connected graph at `root` using BFS
    /// (shortest-path parents).
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NotATree`] if `graph` is not a connected tree
    /// (i.e. `m != n - 1` or disconnected).
    pub fn from_tree_graph(graph: &Graph, root: NodeId) -> Result<Self, GraphError> {
        let n = graph.node_count();
        if n == 0 {
            return Err(GraphError::NotATree {
                reason: "empty graph".into(),
            });
        }
        if graph.edge_count() != n - 1 {
            return Err(GraphError::NotATree {
                reason: format!(
                    "a tree on {n} nodes must have {} edges, found {}",
                    n - 1,
                    graph.edge_count()
                ),
            });
        }
        let mut parent = vec![None; n];
        let mut visited = vec![false; n];
        let mut queue = VecDeque::new();
        visited[root.index()] = true;
        queue.push_back(root);
        while let Some(u) = queue.pop_front() {
            for v in graph.neighbors(u) {
                if !visited[v.index()] {
                    visited[v.index()] = true;
                    parent[v.index()] = Some(u);
                    queue.push_back(v);
                }
            }
        }
        if !visited.iter().all(|&b| b) {
            return Err(GraphError::NotATree {
                reason: "graph is disconnected".into(),
            });
        }
        RootedTree::from_parents(root, parent)
    }

    /// The root node.
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.parent.len()
    }

    /// Number of edges (`n - 1`).
    pub fn edge_count(&self) -> usize {
        self.node_count().saturating_sub(1)
    }

    /// Parent of `u`, or `None` for the root.
    pub fn parent(&self, u: NodeId) -> Option<NodeId> {
        self.parent[u.index()]
    }

    /// Grandparent of `u`, if it exists.
    pub fn grandparent(&self, u: NodeId) -> Option<NodeId> {
        self.parent(u).and_then(|p| self.parent(p))
    }

    /// Children of `u`, in ascending order.
    pub fn children(&self, u: NodeId) -> &[NodeId] {
        &self.children[u.index()]
    }

    /// Number of children of `u`.
    pub fn child_count(&self, u: NodeId) -> usize {
        self.children[u.index()].len()
    }

    /// Depth of `u` (root has depth 0).
    pub fn depth_of(&self, u: NodeId) -> usize {
        self.depth[u.index()]
    }

    /// Depth of the tree: maximum node depth.
    pub fn depth(&self) -> usize {
        self.depth.iter().copied().max().unwrap_or(0)
    }

    /// Returns true if `u` is a leaf (no children).
    pub fn is_leaf(&self, u: NodeId) -> bool {
        self.children[u.index()].is_empty()
    }

    /// Iterator over all nodes in BFS order from the root.
    pub fn bfs_order(&self) -> Vec<NodeId> {
        let mut order = Vec::with_capacity(self.node_count());
        let mut queue = VecDeque::new();
        queue.push_back(self.root);
        while let Some(u) = queue.pop_front() {
            order.push(u);
            for &c in self.children(u) {
                queue.push_back(c);
            }
        }
        order
    }

    /// Maximum number of tree edges incident to any node
    /// (children + parent).
    pub fn max_degree(&self) -> usize {
        (0..self.node_count())
            .map(|i| self.children[i].len() + usize::from(self.parent[i].is_some()))
            .max()
            .unwrap_or(0)
    }

    /// Converts the rooted tree into its underlying undirected [`Graph`].
    pub fn to_graph(&self) -> Graph {
        let mut g = Graph::new(self.node_count());
        for (i, p) in self.parent.iter().enumerate() {
            if let Some(p) = p {
                g.add_edge(NodeId(i), *p).expect("tree edges are valid");
            }
        }
        g
    }

    /// The nodes of the subtree rooted at `u` (including `u`), in BFS order.
    pub fn subtree(&self, u: NodeId) -> Vec<NodeId> {
        let mut out = Vec::new();
        let mut queue = VecDeque::new();
        queue.push_back(u);
        while let Some(x) = queue.pop_front() {
            out.push(x);
            for &c in self.children(x) {
                queue.push_back(c);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    fn nid(i: usize) -> NodeId {
        NodeId(i)
    }

    fn sample_tree() -> RootedTree {
        // 0 is root; 1, 2 children of 0; 3, 4 children of 1; 5 child of 3.
        let parent = vec![
            None,
            Some(nid(0)),
            Some(nid(0)),
            Some(nid(1)),
            Some(nid(1)),
            Some(nid(3)),
        ];
        RootedTree::from_parents(nid(0), parent).unwrap()
    }

    #[test]
    fn basic_accessors() {
        let t = sample_tree();
        assert_eq!(t.root(), nid(0));
        assert_eq!(t.node_count(), 6);
        assert_eq!(t.edge_count(), 5);
        assert_eq!(t.parent(nid(3)), Some(nid(1)));
        assert_eq!(t.grandparent(nid(3)), Some(nid(0)));
        assert_eq!(t.grandparent(nid(1)), None);
        assert_eq!(t.children(nid(1)), &[nid(3), nid(4)]);
        assert_eq!(t.child_count(nid(0)), 2);
        assert_eq!(t.depth_of(nid(5)), 3);
        assert_eq!(t.depth(), 3);
        assert!(t.is_leaf(nid(5)));
        assert!(!t.is_leaf(nid(1)));
        assert_eq!(t.max_degree(), 3);
        assert_eq!(t.subtree(nid(1)), vec![nid(1), nid(3), nid(4), nid(5)]);
    }

    #[test]
    fn bfs_order_starts_at_root_and_covers_all() {
        let t = sample_tree();
        let order = t.bfs_order();
        assert_eq!(order.len(), 6);
        assert_eq!(order[0], nid(0));
    }

    #[test]
    fn to_graph_roundtrip() {
        let t = sample_tree();
        let g = t.to_graph();
        assert_eq!(g.edge_count(), 5);
        let t2 = RootedTree::from_tree_graph(&g, nid(0)).unwrap();
        assert_eq!(t, t2);
    }

    #[test]
    fn rejects_invalid_parent_maps() {
        // Root with a parent.
        assert!(RootedTree::from_parents(nid(0), vec![Some(nid(1)), None]).is_err());
        // Non-root without a parent.
        assert!(RootedTree::from_parents(nid(0), vec![None, None]).is_err());
        // Self-parent.
        assert!(RootedTree::from_parents(nid(0), vec![None, Some(nid(1))]).is_err());
        // Cycle among non-root nodes: 1 -> 2 -> 1 unreachable from root 0.
        assert!(RootedTree::from_parents(nid(0), vec![None, Some(nid(2)), Some(nid(1))]).is_err());
        // Out-of-range root.
        assert!(RootedTree::from_parents(nid(5), vec![None]).is_err());
        // Out-of-range parent.
        assert!(RootedTree::from_parents(nid(0), vec![None, Some(nid(9))]).is_err());
    }

    #[test]
    fn from_tree_graph_rejects_non_trees() {
        let ring = generators::ring(4);
        assert!(RootedTree::from_tree_graph(&ring, nid(0)).is_err());
        let mut disconnected = Graph::new(4);
        disconnected.add_edge(nid(0), nid(1)).unwrap();
        disconnected.add_edge(nid(2), nid(3)).unwrap();
        // 3 edges required for a tree on 4 nodes, only 2 present.
        assert!(RootedTree::from_tree_graph(&disconnected, nid(0)).is_err());
    }

    #[test]
    fn line_rooted_at_endpoint_has_depth_n_minus_1() {
        let g = generators::line(7);
        let t = RootedTree::from_tree_graph(&g, nid(0)).unwrap();
        assert_eq!(t.depth(), 6);
        assert_eq!(t.max_degree(), 2);
    }
}
