//! CPU-performance baseline for the hot data path (`BENCH_core.json`).
//!
//! The model-level report measures rounds and activations — quantities the
//! paper's theorems are about. This module measures the *wall-clock* cost
//! of the structures those quantities are computed on: raw graph mutation,
//! distance-2 scans, `commit_round`, full algorithm executions and the
//! stress-sweep throughput. The resulting JSON is the comparison point for
//! every future performance PR (see README "Performance").
//!
//! Run with `cargo run -p adn-bench --release --bin report -- --bench`
//! (`--quick` for the reduced CI smoke pass, `--threads N` to pin the
//! sweep-throughput case to a thread count).

use crate::harness::{Bench, Sample};
use adn_analysis::stress::json_escape;
use adn_core::algorithm::{self, EngineMode, RunConfig};
use adn_core::committee::{CommitteeForest, IncrementalAdjacency};
use adn_core::subroutines::{
    run_runtime_line_to_tree_free, run_runtime_line_to_tree_seeded, LineToTreeConfig,
};
use adn_graph::rng::DetRng;
use adn_graph::{generators, Edge, Graph, NodeId, UidAssignment, UidMap};
use adn_runtime::flood::flood_actors;
use adn_runtime::{AsyncKnobs, FreeScheduler, SeededScheduler};
use adn_sim::engine::{run_programs, EngineConfig, NodeDecision, NodeProgram, NodeView};
use adn_sim::EdgeDelta;
use adn_sim::{Adversary, DstState, InvariantPolicy, Network, Scenario, WaveActivation};
use std::collections::BTreeSet;
use std::time::Instant;

/// Configuration for the core CPU benchmark.
#[derive(Debug, Clone, Copy, Default)]
pub struct CoreBenchConfig {
    /// Reduced sizes and iteration counts for the CI smoke job.
    pub quick: bool,
    /// Worker threads for the sweep-throughput case (0 = available
    /// parallelism).
    pub threads: usize,
}

/// Resolves a requested worker-thread count: `0` means one thread per
/// available core (the shared default of every parallel entry point).
pub fn resolve_threads(requested: usize) -> usize {
    if requested > 0 {
        requested
    } else {
        std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
    }
}

/// A deterministic pseudo-random edge stream on `n` nodes (no self-loops,
/// duplicates allowed — the structures under test must absorb them).
fn edge_stream(n: usize, m: usize, seed: u64) -> Vec<(NodeId, NodeId)> {
    let mut rng = DetRng::seed_from_u64(seed);
    (0..m)
        .map(|_| {
            let u = rng.gen_range(0, n);
            let mut v = rng.gen_range(0, n - 1);
            if v >= u {
                v += 1;
            }
            (NodeId(u), NodeId(v))
        })
        .collect()
}

/// A deterministic connected "scratch" graph for read-path cases.
fn scratch_graph(n: usize, extra: usize, seed: u64) -> Graph {
    generators::random_line_with_chords(n, extra, seed)
}

fn bench_graph_ops(bench: &mut Bench, quick: bool) {
    let n = if quick { 256 } else { 1024 };
    let m = if quick { 2048 } else { 16384 };
    let stream = edge_stream(n, m, 0xADD5);

    bench.measure(&format!("graph/add_remove_stream n={n} m={m}"), || {
        let mut g = Graph::new(n);
        for &(u, v) in &stream {
            let _ = g.add_edge(u, v);
        }
        for &(u, v) in &stream {
            let _ = g.remove_edge(u, v);
        }
        assert!(g.is_empty());
    });

    let g = scratch_graph(n, 4 * n, 0x5EED);
    bench.measure(&format!("graph/potential_neighbors_all n={n}"), || {
        let mut total = 0usize;
        for u in g.nodes() {
            total += g.potential_neighbors(u).len();
        }
        assert!(total > 0);
    });

    bench.measure(&format!("graph/neighbor_scan n={n}"), || {
        let mut acc = 0usize;
        for u in g.nodes() {
            for v in g.neighbors(u) {
                acc = acc.wrapping_add(v.index());
            }
        }
        std::hint::black_box(acc);
    });
}

fn bench_commit_round(bench: &mut Bench, quick: bool) {
    // Star with centre 0: every leaf pair is at distance 2, so arbitrary
    // leaf-leaf activations are valid. Stage `chunk` edges per round,
    // commit, then deactivate them over the same number of rounds — a
    // pure staging/commit workload with no algorithm logic on top.
    let n = if quick { 513 } else { 2049 };
    let chunk = 64;
    let rounds = if quick { 16 } else { 64 };
    let mut rng = DetRng::seed_from_u64(0xC0117);
    let schedule: Vec<Vec<(NodeId, NodeId)>> = (0..rounds)
        .map(|_| {
            (0..chunk)
                .map(|_| {
                    let u = rng.gen_range(1, n);
                    let mut v = rng.gen_range(1, n - 1);
                    if v >= u {
                        v += 1;
                    }
                    (NodeId(u), NodeId(v))
                })
                .collect()
        })
        .collect();

    bench.measure(
        &format!("network/commit_round star n={n} chunk={chunk} rounds={rounds}x2"),
        || {
            let mut net = Network::new(generators::star(n));
            for batch in &schedule {
                for &(u, v) in batch {
                    let _ = net.stage_activation(u, v);
                }
                net.commit_round();
            }
            for batch in &schedule {
                for &(u, v) in batch {
                    let _ = net.stage_deactivation(u, v);
                }
                net.commit_round();
            }
            assert_eq!(net.activated_edge_count(), 0);
        },
    );

    // Steady-state variant: the network outlives the closure, so the
    // measurement is staging + commit only (no construction), and every
    // iteration returns the snapshot to the initial star.
    let mut net = Network::new(generators::star(n));
    bench.measure(
        &format!("network/commit_round_steady star n={n} chunk={chunk} rounds={rounds}x2"),
        || {
            for batch in &schedule {
                for &(u, v) in batch {
                    let _ = net.stage_activation(u, v);
                }
                net.commit_round();
            }
            for batch in &schedule {
                for &(u, v) in batch {
                    let _ = net.stage_deactivation(u, v);
                }
                net.commit_round();
            }
            assert_eq!(net.activated_edge_count(), 0);
        },
    );
}

/// `m` distinct canonical edges on `n` nodes, sorted ascending — the
/// batch-build input for the scaling rows.
fn scale_edges(n: usize, m: usize, seed: u64) -> Vec<Edge> {
    let mut rng = DetRng::seed_from_u64(seed ^ n as u64);
    let mut set: BTreeSet<Edge> = BTreeSet::new();
    while set.len() < m {
        let u = rng.gen_range(0, n);
        let mut v = rng.gen_range(0, n - 1);
        if v >= u {
            v += 1;
        }
        set.insert(Edge::new(NodeId(u), NodeId(v)));
    }
    set.into_iter().collect()
}

/// `k` distinct leaf-leaf activations on a centre-0 star, each witnessed
/// by the hub — a maximal valid jump wave for the commit benchmarks.
fn scale_wave(n: usize, k: usize, seed: u64) -> (Vec<WaveActivation>, Vec<Edge>) {
    let mut rng = DetRng::seed_from_u64(seed ^ n as u64);
    let mut set: BTreeSet<Edge> = BTreeSet::new();
    while set.len() < k {
        let u = 1 + rng.gen_range(0, n - 1);
        let mut v = 1 + rng.gen_range(0, n - 2);
        if v >= u {
            v += 1;
        }
        set.insert(Edge::new(NodeId(u), NodeId(v)));
    }
    let drops: Vec<Edge> = set.iter().copied().collect();
    let wave = drops
        .iter()
        .map(|e| WaveActivation {
            initiator: e.a,
            target: e.b,
            witness: NodeId(0),
        })
        .collect();
    (wave, drops)
}

/// The scaling rows the ROADMAP's million-node item commits to: arena
/// batch build plus a full adjacency sweep (`graph/scale`), and a staged
/// jump wave committed on the serial vs the sharded path
/// (`network/commit_round_sharded`), each annotated with a
/// `bytes_per_node` footprint stat. The n = 10^6 points run in the
/// separate one-shot cold group (full mode only) so `--quick` stays fast.
fn bench_scale(bench: &mut Bench, n: usize, cold: bool) {
    let m = 2 * n;
    let edges = scale_edges(n, m, 0x5CA1E);
    let mut built: Option<Graph> = None;
    let build_scan = |built: &mut Option<Graph>| {
        let mut g = Graph::new(n);
        for chunk in edges.chunks(8192) {
            g.add_edges_batch(chunk, |_| {});
        }
        assert_eq!(g.edge_count(), m);
        let mut acc = 0usize;
        for u in g.nodes() {
            for &v in g.neighbors_slice(u) {
                acc = acc.wrapping_add(v.index());
            }
        }
        std::hint::black_box(acc);
        *built = Some(g);
    };
    let label = format!("graph/scale batch_build+scan n={n} m={m}");
    if cold {
        bench.measure_cold(&label, || build_scan(&mut built));
    } else {
        bench.measure(&label, || build_scan(&mut built));
    }
    let g = built.take().expect("measured at least once");
    bench.annotate("bytes_per_node", (g.memory_footprint_bytes() / n) as u128);
    drop(g);

    // One wave of k activations committed, then dropped — back to the
    // initial star each iteration. threads=1 is the serial batch path;
    // threads=4 the sharded worker pool (the label pins the count so the
    // row is machine-independent).
    let k = (n / 4).max(1024);
    let (wave, drops) = scale_wave(n, k, 0xC0557);
    for threads in [1usize, 4] {
        let mut net = Network::new(generators::star(n));
        net.set_commit_threads(threads);
        let commit_cycle = |net: &mut Network| {
            net.stage_jump_wave(&wave, &[]).expect("hub-witnessed wave");
            net.commit_round();
            net.stage_jump_wave(&[], &drops).expect("edges are active");
            net.commit_round();
            assert_eq!(net.activated_edge_count(), 0);
        };
        let label = format!("network/commit_round_sharded star n={n} wave={k} threads={threads}");
        if cold {
            bench.measure_cold(&label, || commit_cycle(&mut net));
        } else {
            bench.measure(&label, || commit_cycle(&mut net));
        }
        bench.annotate(
            "bytes_per_node",
            (net.graph().memory_footprint_bytes() / n) as u128,
        );
        if threads > 1 {
            bench.annotate("cores", resolve_threads(0) as u128);
        }
    }
}

/// The full-mode-only n = 10^6 group: the scaling rows plus one complete
/// `graph_to_wreath` execution and one node-program engine run at
/// million-node scale — the ROADMAP's "as fast as the hardware allows"
/// checkpoints. Everything is measured cold and once; at this size a
/// warm-up pass would only double a multi-second row.
fn bench_million(bench: &mut Bench) {
    let n = 1_000_000usize;
    bench_scale(bench, n, true);

    let line = generators::line(n);
    let uids = UidMap::new(n, UidAssignment::RandomPermutation { seed: 11 });
    let a = algorithm::find("graph_to_wreath").expect("registered algorithm");
    let config = RunConfig::default();
    bench.measure_cold(&format!("algorithm/graph_to_wreath n={n}"), || {
        let outcome = a.run(&line, &uids, &config).expect("clean run");
        assert!(outcome.rounds > 0);
    });
    drop(line);

    let rounds = 8usize;
    let g = {
        let mut g = Graph::new(n);
        for chunk in scale_edges(n, 2 * n, 0xE191).chunks(8192) {
            g.add_edges_batch(chunk, |_| {});
        }
        g
    };
    bench.measure_cold(
        &format!("engine/run_programs_gossip n={n} rounds={rounds}"),
        || {
            let mut net = Network::new(g.clone());
            let mut programs: Vec<GossipNode> = (0..n)
                .map(|i| GossipNode {
                    best: uids.uid(NodeId(i)).value(),
                    rounds_left: rounds,
                })
                .collect();
            let report =
                run_programs(&mut net, &mut programs, &uids, &EngineConfig::default()).unwrap();
            assert_eq!(report.rounds, rounds);
        },
    );
}

fn bench_algorithms(bench: &mut Bench, quick: bool) {
    let n = if quick { 128 } else { 512 };
    let cases: &[(&str, Graph)] = &[
        ("graph_to_star", generators::line(n)),
        ("graph_to_wreath", generators::line(n)),
        ("flooding", generators::ring(n)),
    ];
    for (id, graph) in cases {
        let a = algorithm::find(id).expect("registered algorithm");
        let uids = UidMap::new(
            graph.node_count(),
            UidAssignment::RandomPermutation { seed: 11 },
        );
        let config = RunConfig::default();
        bench.measure(&format!("algorithm/{id} n={n}"), || {
            let outcome = a.run(graph, &uids, &config).expect("clean run");
            assert!(outcome.rounds > 0);
        });
    }
}

/// Builds a mid-merge committee forest: `committees` surviving slots over
/// `n` nodes, members distributed round-robin (every committee keeps its
/// smallest slot as leader — the shape a few merge phases produce).
fn mid_merge_forest(n: usize, committees: usize) -> CommitteeForest {
    let mut forest = CommitteeForest::singletons(n);
    for i in committees..n {
        let into = adn_core::committee::CommitteeId(i % committees);
        forest.absorb(adn_core::committee::CommitteeId(i), into);
    }
    forest
}

fn bench_committee(bench: &mut Bench, quick: bool) {
    let n = if quick { 256 } else { 1024 };
    let g = scratch_graph(n, 4 * n, 0xC033);
    let committees = (n / 8).max(2);
    let forest = mid_merge_forest(n, committees);
    bench.measure(
        &format!("committee/adjacency n={n} committees={committees}"),
        || {
            let adj = forest.committee_adjacency(&g);
            assert!(adj.row_count() > 0);
        },
    );

    // Steady-state incremental adjacency: the forest is stable and a
    // trickle of edge deltas arrives per refresh — the delta-driven path
    // the committee algorithms run between merge phases.
    let mut delta_graph = scratch_graph(n, 4 * n, 0xC034);
    let delta_forest = mid_merge_forest(n, committees);
    let mut tracker = IncrementalAdjacency::new(&delta_forest, &delta_graph);
    let toggles: Vec<(NodeId, NodeId)> = edge_stream(n, 64, 0x70661E)
        .into_iter()
        .filter(|&(u, v)| !delta_graph.has_edge(u, v))
        .collect();
    bench.measure(
        &format!("committee/adjacency_incremental n={n} committees={committees}"),
        || {
            for chunk in toggles.chunks(16) {
                let mut deltas = Vec::with_capacity(chunk.len());
                for &(u, v) in chunk {
                    if delta_graph.add_edge(u, v).unwrap_or(false) {
                        deltas.push(EdgeDelta {
                            edge: Edge::new(u, v),
                            added: true,
                        });
                    }
                }
                let adj = tracker.refresh(&delta_forest, &delta_graph, &deltas);
                std::hint::black_box(adj.row_count());
                let mut deltas = Vec::with_capacity(chunk.len());
                for &(u, v) in chunk {
                    if delta_graph.remove_edge(u, v).unwrap_or(false) {
                        deltas.push(EdgeDelta {
                            edge: Edge::new(u, v),
                            added: false,
                        });
                    }
                }
                let adj = tracker.refresh(&delta_forest, &delta_graph, &deltas);
                std::hint::black_box(adj.row_count());
            }
        },
    );

    // A full merge cascade: rebuild the adjacency and halve the committee
    // count until one remains — the structural work of a committee
    // algorithm's phase loop, without the edge operations.
    bench.measure(&format!("committee/merge_cascade n={n}"), || {
        let mut forest = CommitteeForest::singletons(n);
        while forest.live_count() > 1 {
            let adj = forest.committee_adjacency(&g);
            let live = forest.live_ids().to_vec();
            let mut merged = vec![false; forest.slot_count()];
            for &cid in &live {
                if merged[cid.index()] {
                    continue;
                }
                // Merge into the first neighbouring committee that is
                // still unmerged this phase (deterministic row order).
                let target = adj
                    .neighbors(cid)
                    .iter()
                    .map(|r| r.other)
                    .find(|o| forest.is_alive(*o) && !merged[o.index()] && *o != cid);
                if let Some(t) = target {
                    merged[cid.index()] = true;
                    merged[t.index()] = true;
                    forest.absorb(cid, t);
                }
            }
        }
        assert_eq!(forest.live_count(), 1);
    });
}

/// Max-UID gossip without edge operations: the steady-state program-driven
/// workload (static topology, so the incremental view cache never rebuilds
/// a view after round one).
struct GossipNode {
    best: u64,
    rounds_left: usize,
}

impl NodeProgram for GossipNode {
    type Message = u64;

    fn send(&mut self, view: &NodeView) -> Vec<(NodeId, u64)> {
        view.neighbors.iter().map(|&v| (v, self.best)).collect()
    }

    fn step(&mut self, _view: &NodeView, inbox: &[(NodeId, u64)]) -> NodeDecision {
        for (_, m) in inbox {
            self.best = self.best.max(*m);
        }
        self.rounds_left = self.rounds_left.saturating_sub(1);
        NodeDecision::none()
    }

    fn has_terminated(&self) -> bool {
        self.rounds_left == 0
    }
}

/// One node toggles an edge on and off while everyone else idles: the
/// sparse-edit engine workload (a handful of views refresh per round).
struct ToggleNode {
    pending: Option<NodeId>,
    rounds_left: usize,
}

impl NodeProgram for ToggleNode {
    type Message = ();

    fn send(&mut self, _view: &NodeView) -> Vec<(NodeId, ())> {
        Vec::new()
    }

    fn step(&mut self, view: &NodeView, _inbox: &[(NodeId, ())]) -> NodeDecision {
        if self.rounds_left == 0 {
            return NodeDecision::none();
        }
        self.rounds_left -= 1;
        if let Some(v) = self.pending.take() {
            return NodeDecision {
                activate: Vec::new(),
                deactivate: vec![v],
            };
        }
        if view.id == NodeId(0) {
            if let Some(&v) = view.potential_neighbors.first() {
                self.pending = Some(v);
                return NodeDecision {
                    activate: vec![v],
                    deactivate: Vec::new(),
                };
            }
        }
        NodeDecision::none()
    }

    fn has_terminated(&self) -> bool {
        self.rounds_left == 0
    }
}

fn bench_engine(bench: &mut Bench, quick: bool) {
    let n = if quick { 256 } else { 1024 };
    let rounds = if quick { 64 } else { 128 };
    let g = scratch_graph(n, n, 0xE191);
    let uids = UidMap::new(n, UidAssignment::Sequential);

    bench.measure(
        &format!("engine/run_programs_gossip n={n} rounds={rounds}"),
        || {
            let mut net = Network::new(g.clone());
            let mut programs: Vec<GossipNode> = (0..n)
                .map(|i| GossipNode {
                    best: uids.uid(NodeId(i)).value(),
                    rounds_left: rounds,
                })
                .collect();
            let report =
                run_programs(&mut net, &mut programs, &uids, &EngineConfig::default()).unwrap();
            assert_eq!(report.rounds, rounds);
        },
    );

    bench.measure(
        &format!("engine/run_programs_sparse_edits n={n} rounds={rounds}"),
        || {
            let mut net = Network::new(g.clone());
            let mut programs: Vec<ToggleNode> = (0..n)
                .map(|_| ToggleNode {
                    pending: None,
                    rounds_left: rounds,
                })
                .collect();
            let report =
                run_programs(&mut net, &mut programs, &uids, &EngineConfig::default()).unwrap();
            assert_eq!(report.rounds, rounds);
        },
    );
}

/// The asynchronous actor runtime: flooding, line-to-tree and the
/// committee actors (GraphToStar / GraphToWreath) on both schedulers.
/// The seeded cases exercise the adversarial knobs (reorder window,
/// per-link delay, asymmetric latency); the free cases pin the thread
/// count so the label — and therefore the regression gate — is
/// machine-independent.
fn bench_runtime(bench: &mut Bench, quick: bool) {
    let n = if quick { 128 } else { 512 };
    let knobs = AsyncKnobs {
        reorder_window: 4,
        max_link_delay: 2,
        asymmetric_delay: true,
    };
    let free_threads = 4;

    let ring = generators::ring(n);
    let uids = UidMap::new(n, UidAssignment::RandomPermutation { seed: 11 });
    bench.measure(&format!("runtime/flood_seeded n={n}"), || {
        let mut net = Network::new(ring.clone());
        let mut actors = flood_actors(&ring, &uids);
        let report = SeededScheduler::new(42)
            .with_knobs(knobs)
            .run(&mut net, &mut actors)
            .expect("seeded flood quiesces");
        assert_eq!(report.in_flight_at_detection, 0);
    });
    bench.measure(
        &format!("runtime/flood_free n={n} threads={free_threads}"),
        || {
            let mut net = Network::new(ring.clone());
            let mut actors = flood_actors(&ring, &uids);
            FreeScheduler::new(free_threads)
                .run(&mut net, &mut actors)
                .expect("free flood quiesces");
            assert!(actors.iter().all(|a| a.known().len() == n));
        },
    );
    bench.annotate("cores", resolve_threads(0) as u128);

    let line_graph = generators::line(n);
    let line: Vec<NodeId> = (0..n).map(NodeId).collect();
    let config = LineToTreeConfig::binary();
    bench.measure(&format!("runtime/line_to_tree_seeded n={n}"), || {
        let mut net = Network::new(line_graph.clone());
        let (tree, report) = run_runtime_line_to_tree_seeded(&mut net, &line, &config, 42, knobs)
            .expect("seeded tree build quiesces");
        assert_eq!(report.in_flight_at_detection, 0);
        std::hint::black_box(tree.depth());
    });
    bench.measure(
        &format!("runtime/line_to_tree_free n={n} threads={free_threads}"),
        || {
            let mut net = Network::new(line_graph.clone());
            let (tree, _) = run_runtime_line_to_tree_free(&mut net, &line, &config, free_threads)
                .expect("free tree build quiesces");
            std::hint::black_box(tree.depth());
        },
    );
    bench.annotate("cores", resolve_threads(0) as u128);

    // The committee actors: GraphToStar / GraphToWreath through the full
    // `EngineMode` dispatch path. Smaller n than the subroutine cases —
    // a committee run is a whole phase cascade (gossip, report, decide,
    // execute per phase), not a single quiescent wave.
    let committee_n = if quick { 64 } else { 256 };
    let committee_graph = generators::ring(committee_n);
    let committee_uids = UidMap::new(committee_n, UidAssignment::RandomPermutation { seed: 11 });
    for (id, label) in [("graph_to_star", "star"), ("graph_to_wreath", "wreath")] {
        let a = algorithm::find(id).expect("registered algorithm");
        let seeded = RunConfig::default().with_engine(EngineMode::Seeded { seed: 42 });
        bench.measure(&format!("runtime/{label}_seeded n={committee_n}"), || {
            let outcome = a
                .run(&committee_graph, &committee_uids, &seeded)
                .expect("seeded committee run quiesces");
            assert!(outcome.runtime.is_some());
        });
        let free = RunConfig::default().with_engine(EngineMode::Free {
            threads: free_threads,
        });
        bench.measure(
            &format!("runtime/{label}_free n={committee_n} threads={free_threads}"),
            || {
                let outcome = a
                    .run(&committee_graph, &committee_uids, &free)
                    .expect("free committee run quiesces");
                assert!(outcome.runtime.is_some());
            },
        );
        bench.annotate("cores", resolve_threads(0) as u128);
    }
}

fn bench_sweep(bench: &mut Bench, quick: bool, threads: usize) {
    let cases = if quick { 24 } else { 96 };
    bench.measure(&format!("sweep/serial cases={cases}"), || {
        let summary = adn_analysis::stress::sweep(0xBE7C4, cases);
        assert_eq!(summary.reports.len(), cases);
    });
    if threads > 1 {
        bench.measure(&format!("sweep/threads={threads} cases={cases}"), || {
            let summary = adn_analysis::stress::sweep_with_threads(0xBE7C4, cases, threads);
            assert_eq!(summary.reports.len(), cases);
        });
        bench.annotate("cores", resolve_threads(0) as u128);
    }
}

/// The DST invariant engine under a sparse steady-state workload and
/// under churn, at the ROADMAP's n=65536 scale. Every round stages at
/// most 64 edge events on an armed 65536-node star, so the incremental
/// row (`dst/invariants_steady`) pays O(changes) per round while the
/// forced-from-scratch comparison row (`dst/invariants_steady_scratch`)
/// re-runs the full live-subgraph BFS and degree scan the old checker
/// used. The churn row drives one join per round through the
/// event-fed path (UID bookkeeping, forest growth).
fn bench_dst_invariants(bench: &mut Bench) {
    let n = 65536usize;
    let rounds = 64usize;
    let chunk = 64usize;
    // Distinct leaf-leaf chords on the centre-0 star: every leaf pair is
    // at distance 2, so plain staging validates, and none of them is an
    // initial edge.
    let chords: Vec<(NodeId, NodeId)> = (0..chunk)
        .map(|k| (NodeId(1 + 2 * k), NodeId(2 + 2 * k)))
        .collect();
    let policy = InvariantPolicy {
        check_connectivity: true,
        max_activated_degree: Some(8),
        max_active_edges: Some(2 * n),
        check_uid_uniqueness: true,
    };
    let uids: Vec<u64> = (1..=n as u64).collect();
    let toggle_rounds = |net: &mut Network| {
        for r in 0..rounds {
            for &(u, v) in &chords {
                if r % 2 == 0 {
                    let _ = net.stage_activation(u, v);
                } else {
                    let _ = net.stage_deactivation(u, v);
                }
            }
            net.commit_round();
        }
        assert_eq!(net.activated_edge_count(), 0);
    };

    let mut net = Network::new(generators::star(n));
    let state = DstState::new(
        Adversary::new(Scenario::failure_free(), 0xD57),
        policy.clone(),
        uids.clone(),
    );
    net.install_dst(state);
    bench.measure(&format!("dst/invariants_steady n={n}"), || {
        toggle_rounds(&mut net);
    });

    let mut net = Network::new(generators::star(n));
    let mut state = DstState::new(
        Adversary::new(Scenario::failure_free(), 0xD57),
        policy.clone(),
        uids.clone(),
    );
    state.set_from_scratch_checks(true);
    net.install_dst(state);
    bench.measure(&format!("dst/invariants_steady_scratch n={n}"), || {
        toggle_rounds(&mut net);
    });

    // Churn: one guaranteed join per round boundary (probability 1, ample
    // budget), so every round exercises the event-fed join path — forest
    // growth, attach-edge union and incremental UID bookkeeping.
    let churn = Scenario {
        fault_budget: 1_000_000,
        per_round_probability: 1.0,
        ..Scenario::churn()
    };
    let mut net = Network::new(generators::star(n));
    let state = DstState::new(Adversary::new(churn, 0xD58), policy, uids);
    net.install_dst(state);
    bench.measure(&format!("dst/invariants_churn n={n}"), || {
        for _ in 0..rounds {
            net.advance_idle_rounds(1);
        }
    });
}

/// The traced-round path at the ROADMAP's n=65536 scale: 64 rounds of at
/// most 64 edge events each on a star, with per-round
/// `adn_sim::RoundStats` tracing on. The delta-driven row (`network/commit_round_traced`)
/// serves the traced `max_degree` from the incremental degree histogram
/// in O(changes) per round; the forced comparison row
/// (`..._traced_scratch`, `Network::set_trace_from_scratch`) re-runs the
/// O(n) whole-graph scan every traced round, which is what every traced
/// round paid before the round-event bus. `dst/trace_steady` stacks
/// tracing on top of an armed DST state, so the row gates the combined
/// per-round observer cost (invariants + trace) staying O(changes).
fn bench_traced_rounds(bench: &mut Bench) {
    let n = 65536usize;
    let rounds = 64usize;
    let chunk = 64usize;
    let chords: Vec<(NodeId, NodeId)> = (0..chunk)
        .map(|k| (NodeId(1 + 2 * k), NodeId(2 + 2 * k)))
        .collect();
    let toggle_rounds = |net: &mut Network| {
        for r in 0..rounds {
            for &(u, v) in &chords {
                if r % 2 == 0 {
                    let _ = net.stage_activation(u, v);
                } else {
                    let _ = net.stage_deactivation(u, v);
                }
            }
            net.commit_round();
        }
        assert_eq!(net.activated_edge_count(), 0);
    };

    let mut net = Network::new(generators::star(n));
    net.set_trace_enabled(true);
    // Long-lived traced network: cap the per-round history so the
    // steady-state measurement is the traced commit, not Vec growth.
    net.set_round_history_limit(Some(1024));
    bench.measure(&format!("network/commit_round_traced n={n}"), || {
        toggle_rounds(&mut net);
        assert_eq!(net.trace().last().map(|s| s.max_degree), Some(n - 1));
    });

    let mut net = Network::new(generators::star(n));
    net.set_trace_enabled(true);
    net.set_trace_from_scratch(true);
    net.set_round_history_limit(Some(1024));
    bench.measure(
        &format!("network/commit_round_traced_scratch n={n}"),
        || {
            toggle_rounds(&mut net);
            assert_eq!(net.trace().last().map(|s| s.max_degree), Some(n - 1));
        },
    );

    let policy = InvariantPolicy {
        check_connectivity: true,
        max_activated_degree: Some(8),
        max_active_edges: Some(2 * n),
        check_uid_uniqueness: true,
    };
    let uids: Vec<u64> = (1..=n as u64).collect();
    let mut net = Network::new(generators::star(n));
    net.set_trace_enabled(true);
    net.set_round_history_limit(Some(1024));
    let state = DstState::new(
        Adversary::new(Scenario::failure_free(), 0xD59),
        policy,
        uids,
    );
    net.install_dst(state);
    bench.measure(&format!("dst/trace_steady n={n}"), || {
        toggle_rounds(&mut net);
    });
}

/// Serializes bench samples to the `BENCH_core.json` document
/// (hand-rolled — the workspace is dependency-free).
fn to_json(cfg: &CoreBenchConfig, threads: usize, elapsed_ms: u128, samples: &[Sample]) -> String {
    let rows: Vec<String> = samples
        .iter()
        .map(|s| {
            let stats: String = s
                .stats
                .iter()
                .map(|(k, v)| format!(",\"{}\":{v}", json_escape(k)))
                .collect();
            format!(
                "{{\"case\":\"{}\",\"min_ns\":{},\"median_ns\":{},\"mean_ns\":{}{stats}}}",
                json_escape(&s.label),
                s.min.as_nanos(),
                s.median.as_nanos(),
                s.mean.as_nanos(),
            )
        })
        .collect();
    // `cores` records the machine the numbers were taken on: rows pinned
    // to more worker threads than that measure oversubscription overhead,
    // not speedup, and the baseline check skips them on smaller machines.
    format!(
        "{{\"mode\":\"{}\",\"threads\":{},\"cores\":{},\"elapsed_ms\":{},\"rows\":[{}]}}",
        if cfg.quick { "quick" } else { "full" },
        threads,
        resolve_threads(0),
        elapsed_ms,
        rows.join(","),
    )
}

/// The worker-thread count a case label is pinned to (a `threads=K`
/// token anywhere in the label), if any.
fn pinned_threads(label: &str) -> Option<usize> {
    let rest = &label[label.find("threads=")? + "threads=".len()..];
    let digits = &rest[..rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len())];
    digits.parse().ok()
}

/// Extracts `(case label, min_ns)` rows from a `BENCH_core.json` document.
///
/// The artifact is hand-rolled, so the scanner is deliberately tolerant:
/// keys may come in any order, whitespace may appear anywhere, trailing
/// (or duplicated) commas are accepted, and string escapes are decoded. A
/// row counts only when its `case` and `min_ns` fields appear *in the
/// same object* — the substring scanner this replaces searched forward
/// for `"min_ns":` from the label and could silently pair a label with
/// the *next* row's counter when keys were reordered or renamed, dropping
/// a row from the regression gate without any visible error.
pub fn parse_rows(json: &str) -> Vec<(String, u128)> {
    let mut scanner = RowScanner {
        bytes: json.as_bytes(),
        pos: 0,
        rows: Vec::new(),
    };
    scanner.skip_ws();
    let _ = scanner.value();
    scanner.rows
}

/// Minimal recursive-descent scanner behind [`parse_rows`]: walks any
/// JSON-shaped document and collects every object that carries both a
/// `"case"` string and a `"min_ns"` integer. Malformed input never
/// panics — scanning just stops at the first byte that fits nothing.
struct RowScanner<'a> {
    bytes: &'a [u8],
    pos: usize,
    rows: Vec<(String, u128)>,
}

impl RowScanner<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, c: u8) -> bool {
        self.skip_ws();
        if self.peek() == Some(c) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    /// Parses any value; returns the integer when the value was a
    /// nonnegative integer number, `Some(None)` for every other valid
    /// value, `None` when nothing could be parsed (scan stops there).
    fn value(&mut self) -> Option<Option<u128>> {
        self.skip_ws();
        match self.peek()? {
            b'{' => self.object().map(|()| None),
            b'[' => self.array().map(|()| None),
            b'"' => self.string().map(|_| None),
            _ => self.scalar(),
        }
    }

    fn object(&mut self) -> Option<()> {
        if !self.eat(b'{') {
            return None;
        }
        let mut case: Option<String> = None;
        let mut min_ns: Option<u128> = None;
        loop {
            // Tolerate trailing and duplicated commas between members.
            while self.eat(b',') {}
            if self.eat(b'}') {
                break;
            }
            let key = self.string()?;
            if !self.eat(b':') {
                return None;
            }
            self.skip_ws();
            if self.peek() == Some(b'"') {
                let v = self.string()?;
                if key == "case" {
                    case = Some(v);
                }
            } else {
                let v = self.value()?;
                if key == "min_ns" {
                    min_ns = v.or(min_ns);
                }
            }
        }
        if let (Some(label), Some(m)) = (case, min_ns) {
            self.rows.push((label, m));
        }
        Some(())
    }

    fn array(&mut self) -> Option<()> {
        if !self.eat(b'[') {
            return None;
        }
        loop {
            while self.eat(b',') {}
            if self.eat(b']') {
                break;
            }
            self.value()?;
        }
        Some(())
    }

    fn string(&mut self) -> Option<String> {
        if !self.eat(b'"') {
            return None;
        }
        let mut out = String::new();
        loop {
            match self.peek()? {
                b'"' => {
                    self.pos += 1;
                    return Some(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let escaped = self.peek()?;
                    self.pos += 1;
                    match escaped {
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'u' => {
                            let hex = self.bytes.get(self.pos..self.pos + 4)?;
                            self.pos += 4;
                            let code =
                                u32::from_str_radix(std::str::from_utf8(hex).ok()?, 16).ok()?;
                            out.push(char::from_u32(code)?);
                        }
                        c => out.push(c as char),
                    }
                }
                _ => {
                    // Consume one UTF-8 scalar (labels are ASCII in
                    // practice, but stay correct for anything).
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len() && (self.bytes[self.pos] & 0xC0) == 0x80 {
                        self.pos += 1;
                    }
                    out.push_str(std::str::from_utf8(&self.bytes[start..self.pos]).ok()?);
                }
            }
        }
    }

    /// Numbers, booleans and null; only a plain nonnegative integer
    /// yields a value.
    fn scalar(&mut self) -> Option<Option<u128>> {
        self.skip_ws();
        let start = self.pos;
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E' | b'a'..=b'z' | b'A'..=b'Z')
        ) {
            self.pos += 1;
        }
        if self.pos == start {
            return None;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).ok()?;
        Some(text.parse::<u128>().ok())
    }
}

/// Cases whose baseline `min_ns` is below this are excluded from the
/// regression comparison: at the microsecond scale, cross-machine clock
/// and cache differences dwarf any real signal (the quick-mode
/// `neighbor_scan` case runs ~1 µs), so comparing them only produces
/// false alarms. Skipped cases are named in the verdict.
const MIN_COMPARABLE_NS: u128 = 100_000;

/// Compares a freshly produced `BENCH_core.json` document against a
/// committed baseline document: every baseline case (matched by exact
/// label, so mode and sizes must agree) must be present in the current
/// run and must not regress by more than `factor` on `min_ns`. Baseline
/// cases *missing* from the current run are an error — a renamed or
/// deleted bench must be re-baselined, not silently dropped from the
/// gate — and a run with no matching case at all (e.g. quick-mode
/// samples checked against a full-mode baseline) fails loudly rather
/// than passing vacuously. Sub-[`MIN_COMPARABLE_NS`] baseline cases are
/// skipped as noise.
pub fn check_against_baseline(
    baseline_json: &str,
    current_json: &str,
    factor: f64,
) -> Result<String, String> {
    check_against_baseline_with_cores(baseline_json, current_json, factor, resolve_threads(0))
}

/// [`check_against_baseline`] with the available core count made
/// explicit (the public entry point detects it): baseline cases pinned
/// to more worker threads than `cores` are skipped with a loud note —
/// on a smaller machine those rows measure oversubscription overhead,
/// not speedup, and comparing them poisons the verdict both ways.
pub fn check_against_baseline_with_cores(
    baseline_json: &str,
    current_json: &str,
    factor: f64,
    cores: usize,
) -> Result<String, String> {
    let baseline = parse_rows(baseline_json);
    let current = parse_rows(current_json);
    let mut compared = 0usize;
    let mut regressions: Vec<String> = Vec::new();
    let mut missing: Vec<String> = Vec::new();
    let mut skipped: Vec<String> = Vec::new();
    let mut overcommitted: Vec<String> = Vec::new();
    let mut report = String::new();
    for (label, base_min) in &baseline {
        if pinned_threads(label).is_some_and(|t| t > cores) {
            overcommitted.push(label.clone());
            continue;
        }
        let Some((_, new_min)) = current.iter().find(|(l, _)| l == label) else {
            missing.push(label.clone());
            continue;
        };
        if *base_min < MIN_COMPARABLE_NS {
            skipped.push(label.clone());
            continue;
        }
        compared += 1;
        let ratio = *new_min as f64 / (*base_min).max(1) as f64;
        report.push_str(&format!(
            "{label:<56} baseline {base_min:>12} ns  now {new_min:>12} ns  ratio {ratio:.2}\n"
        ));
        if ratio > factor {
            regressions.push(format!(
                "{label}: {new_min} ns vs baseline {base_min} ns ({ratio:.2}x > {factor:.1}x)"
            ));
        }
    }
    if compared == 0 && skipped.is_empty() && overcommitted.is_empty() {
        return Err(format!(
            "no baseline case matched any of the {} measured samples — \
             mode/sizes/threads of the run must match the committed baseline",
            current.len()
        ));
    }
    if !missing.is_empty() {
        return Err(format!(
            "{report}bench check FAILED: {} baseline case(s) missing from this run \
             (renamed or deleted benches must be re-baselined):\n  {}",
            missing.len(),
            missing.join("\n  ")
        ));
    }
    if !skipped.is_empty() {
        report.push_str(&format!(
            "skipped {} sub-{MIN_COMPARABLE_NS}ns case(s) as cross-machine noise: {}\n",
            skipped.len(),
            skipped.join(", ")
        ));
    }
    if !overcommitted.is_empty() {
        report.push_str(&format!(
            "SKIPPED {} case(s) pinned to more worker threads than the {cores} available \
             core(s) — their baseline numbers measure oversubscription, not speedup: {}\n",
            overcommitted.len(),
            overcommitted.join(", ")
        ));
    }
    // Current cases the baseline does not know yet are not gated — say
    // so, so a stale baseline is visible in the verdict instead of the
    // new benches silently running unchecked.
    let unbaselined: Vec<&str> = current
        .iter()
        .filter(|(l, _)| !baseline.iter().any(|(b, _)| b == l))
        .map(|(l, _)| l.as_str())
        .collect();
    if !unbaselined.is_empty() {
        report.push_str(&format!(
            "note: {} case(s) not in the baseline (un-gated until it is regenerated): {}\n",
            unbaselined.len(),
            unbaselined.join(", ")
        ));
    }
    if regressions.is_empty() {
        report.push_str(&format!(
            "bench check: {compared} cases within {factor:.1}x of baseline\n"
        ));
        Ok(report)
    } else {
        Err(format!(
            "{report}bench check FAILED: {} regression(s) > {factor:.1}x:\n  {}",
            regressions.len(),
            regressions.join("\n  ")
        ))
    }
}

/// Runs the core CPU benchmark and returns `(human_table, json)`.
pub fn run(cfg: &CoreBenchConfig) -> (String, String) {
    let threads = resolve_threads(cfg.threads);
    let iterations = if cfg.quick { 3 } else { 9 };
    let started = Instant::now();
    let mut bench = Bench::new("core CPU baseline", iterations);
    bench_graph_ops(&mut bench, cfg.quick);
    bench_commit_round(&mut bench, cfg.quick);
    bench_scale(&mut bench, 4096, false);
    if !cfg.quick {
        bench_scale(&mut bench, 65536, false);
    }
    bench_committee(&mut bench, cfg.quick);
    bench_engine(&mut bench, cfg.quick);
    bench_algorithms(&mut bench, cfg.quick);
    bench_runtime(&mut bench, cfg.quick);
    bench_sweep(&mut bench, cfg.quick, threads);
    bench_dst_invariants(&mut bench);
    bench_traced_rounds(&mut bench);
    let mut samples = bench.take_samples();
    if !cfg.quick {
        let mut cold = Bench::new("core CPU scaling (n=10^6, one-shot)", 1);
        bench_million(&mut cold);
        samples.extend(cold.take_samples());
    }
    let samples = samples;
    let elapsed_ms = started.elapsed().as_millis();
    let mut table = format!(
        "core CPU baseline ({} mode, {iterations} iterations, sweep threads {threads})\n",
        if cfg.quick { "quick" } else { "full" },
    );
    for s in &samples {
        table.push_str(&format!(
            "{:<56} min {:>12?} median {:>12?} mean {:>12?}\n",
            s.label, s.min, s.median, s.mean
        ));
    }
    let json = to_json(cfg, threads, elapsed_ms, &samples);
    (table, json)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_bench_runs_and_serializes() {
        let (table, json) = run(&CoreBenchConfig {
            quick: true,
            threads: 1,
        });
        assert!(table.contains("core CPU baseline"));
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"mode\":\"quick\""));
        assert!(json.contains("graph/add_remove_stream"));
        assert!(json.contains("network/commit_round"));
        assert!(json.contains("sweep/serial"));
    }

    #[test]
    fn baseline_check_compares_and_flags_regressions() {
        let baseline = "{\"mode\":\"quick\",\"threads\":1,\"elapsed_ms\":1,\"rows\":[\
                        {\"case\":\"a n=1\",\"min_ns\":500000,\"median_ns\":1,\"mean_ns\":1},\
                        {\"case\":\"b n=1\",\"min_ns\":500000,\"median_ns\":1,\"mean_ns\":1}]}";
        assert_eq!(
            parse_rows(baseline),
            vec![("a n=1".to_string(), 500000), ("b n=1".to_string(), 500000)]
        );
        // Within 2x: passes.
        let current = baseline.replace(
            "\"min_ns\":500000,\"median_ns\":1,\"mean_ns\":1}]",
            "\"min_ns\":700000,\"median_ns\":1,\"mean_ns\":1}]",
        );
        let verdict = check_against_baseline(baseline, &current, 2.0).expect("within budget");
        assert!(verdict.contains("2 cases within 2.0x"), "{verdict}");
        // A > 2x regression fails and names the case.
        let bad = baseline.replacen("\"min_ns\":500000", "\"min_ns\":9999999", 1);
        let failure = check_against_baseline(baseline, &bad, 2.0).unwrap_err();
        assert!(failure.contains("a n=1"), "{failure}");
        assert!(failure.contains("regression"), "{failure}");
        // Disjoint label sets are a loud configuration error, not a pass.
        let other =
            "{\"rows\":[{\"case\":\"z n=9\",\"min_ns\":500000,\"median_ns\":5,\"mean_ns\":5}]}";
        let mismatch = check_against_baseline(baseline, other, 2.0).unwrap_err();
        assert!(mismatch.contains("no baseline case matched"), "{mismatch}");
        // A baseline case absent from the current run fails loudly too —
        // coverage cannot silently shrink.
        let shrunk =
            "{\"rows\":[{\"case\":\"a n=1\",\"min_ns\":500000,\"median_ns\":1,\"mean_ns\":1}]}";
        let lost = check_against_baseline(baseline, shrunk, 2.0).unwrap_err();
        assert!(lost.contains("missing from this run"), "{lost}");
        assert!(lost.contains("b n=1"), "{lost}");
        // Sub-floor baseline cases are excluded from the comparison (and
        // named), so microsecond noise cannot fail the gate.
        let tiny = "{\"rows\":[\
                    {\"case\":\"a n=1\",\"min_ns\":500000,\"median_ns\":1,\"mean_ns\":1},\
                    {\"case\":\"t n=1\",\"min_ns\":900,\"median_ns\":1,\"mean_ns\":1}]}";
        let noisy = tiny.replace("\"min_ns\":900", "\"min_ns\":90000");
        let verdict = check_against_baseline(tiny, &noisy, 2.0).expect("noise is skipped");
        assert!(verdict.contains("skipped 1"), "{verdict}");
        assert!(verdict.contains("t n=1"), "{verdict}");
        // Current cases absent from the baseline pass but are named, so
        // a stale baseline is visible in the verdict.
        let grown = "{\"rows\":[\
                     {\"case\":\"a n=1\",\"min_ns\":500000,\"median_ns\":1,\"mean_ns\":1},\
                     {\"case\":\"b n=1\",\"min_ns\":500000,\"median_ns\":1,\"mean_ns\":1},\
                     {\"case\":\"new n=1\",\"min_ns\":500000,\"median_ns\":1,\"mean_ns\":1}]}";
        let verdict = check_against_baseline(baseline, grown, 2.0).expect("new cases pass");
        assert!(verdict.contains("not in the baseline"), "{verdict}");
        assert!(verdict.contains("new n=1"), "{verdict}");
    }

    #[test]
    fn pinned_threads_parses_labels() {
        assert_eq!(pinned_threads("sweep/threads=4 cases=96"), Some(4));
        assert_eq!(
            pinned_threads("network/commit_round_sharded star n=65536 wave=16384 threads=4"),
            Some(4)
        );
        assert_eq!(
            pinned_threads("runtime/flood_free n=4096 threads=2"),
            Some(2)
        );
        assert_eq!(pinned_threads("sweep/serial cases=96"), None);
        assert_eq!(pinned_threads("graph/scale n=4096 m=8192"), None);
    }

    #[test]
    fn baseline_check_skips_rows_overcommitted_for_this_machine() {
        let baseline = "{\"rows\":[\
                        {\"case\":\"a n=1\",\"min_ns\":500000,\"median_ns\":1,\"mean_ns\":1},\
                        {\"case\":\"sweep/threads=4 cases=96\",\"min_ns\":500000,\
                         \"median_ns\":1,\"mean_ns\":1}]}";
        // On a 1-core machine the threads=4 row is skipped (loudly) and
        // its absence from the current run is not an error — a smaller
        // machine cannot reproduce it meaningfully.
        let current =
            "{\"rows\":[{\"case\":\"a n=1\",\"min_ns\":500000,\"median_ns\":1,\"mean_ns\":1}]}";
        let verdict = check_against_baseline_with_cores(baseline, current, 2.0, 1)
            .expect("overcommitted row is skipped, not missing");
        assert!(verdict.contains("SKIPPED 1 case(s)"), "{verdict}");
        assert!(verdict.contains("sweep/threads=4 cases=96"), "{verdict}");
        assert!(verdict.contains("1 cases within 2.0x"), "{verdict}");
        // Even a wild regression on the overcommitted row cannot fail the
        // gate on the smaller machine...
        let regressed = "{\"rows\":[\
                         {\"case\":\"a n=1\",\"min_ns\":500000,\"median_ns\":1,\"mean_ns\":1},\
                         {\"case\":\"sweep/threads=4 cases=96\",\"min_ns\":99999999,\
                          \"median_ns\":1,\"mean_ns\":1}]}";
        check_against_baseline_with_cores(baseline, regressed, 2.0, 1)
            .expect("overcommitted regression is not gated here");
        // ...but on a machine with enough cores it is compared again.
        let failure = check_against_baseline_with_cores(baseline, regressed, 2.0, 4)
            .expect_err("4-core machine gates the threads=4 row");
        assert!(failure.contains("sweep/threads=4"), "{failure}");
    }

    #[test]
    fn parse_rows_tolerates_reordered_keys_whitespace_and_trailing_commas() {
        // Reordered keys: `min_ns` before `case`. The old substring
        // scanner paired each label with the *next* row's counter here
        // and silently dropped the last row.
        let reordered = "{\"rows\":[\
                         {\"min_ns\":111,\"case\":\"a n=1\",\"median_ns\":1},\
                         {\"min_ns\":222,\"case\":\"b n=1\",\"median_ns\":2}]}";
        assert_eq!(
            parse_rows(reordered),
            vec![("a n=1".to_string(), 111), ("b n=1".to_string(), 222)]
        );
        // Whitespace everywhere (pretty-printed artifact).
        let pretty =
            "{\n  \"rows\": [\n    { \"case\" : \"a n=1\" ,\n      \"min_ns\" : 123 }\n  ]\n}";
        assert_eq!(parse_rows(pretty), vec![("a n=1".to_string(), 123)]);
        // Trailing commas after members and elements.
        let trailing =
            "{\"rows\":[{\"case\":\"a n=1\",\"min_ns\":7,},{\"case\":\"b n=1\",\"min_ns\":8,},]}";
        assert_eq!(
            parse_rows(trailing),
            vec![("a n=1".to_string(), 7), ("b n=1".to_string(), 8)]
        );
        // A row missing `min_ns` is skipped rather than stealing the next
        // row's counter; the next row still parses.
        let partial = "{\"rows\":[{\"case\":\"broken n=1\",\"median_ns\":9},\
                       {\"case\":\"ok n=1\",\"min_ns\":10}]}";
        assert_eq!(parse_rows(partial), vec![("ok n=1".to_string(), 10)]);
        // Escaped labels decode; nested values are walked, not tripped on.
        let escaped =
            "{\"meta\":{\"notes\":[1,2,{\"x\":true}]},\"rows\":[{\"case\":\"q\\\"uote n=1\",\"min_ns\":5}]}";
        assert_eq!(parse_rows(escaped), vec![("q\"uote n=1".to_string(), 5)]);
        // Garbage never panics.
        assert!(parse_rows("{\"rows\":[{\"case\":\"x").is_empty());
        assert!(parse_rows("not json at all").is_empty());
    }

    #[test]
    fn committee_and_engine_benches_run() {
        let mut bench = Bench::new("smoke", 1);
        bench_committee(&mut bench, true);
        bench_engine(&mut bench, true);
        let samples = bench.take_samples();
        let labels: Vec<&str> = samples.iter().map(|s| s.label.as_str()).collect();
        assert!(labels.iter().any(|l| l.starts_with("committee/adjacency")));
        assert!(labels
            .iter()
            .any(|l| l.starts_with("committee/adjacency_incremental")));
        assert!(labels
            .iter()
            .any(|l| l.starts_with("committee/merge_cascade")));
        assert!(labels
            .iter()
            .any(|l| l.starts_with("engine/run_programs_gossip")));
        assert!(labels
            .iter()
            .any(|l| l.starts_with("engine/run_programs_sparse_edits")));
    }

    #[test]
    fn runtime_benches_run() {
        let mut bench = Bench::new("smoke", 1);
        bench_runtime(&mut bench, true);
        let samples = bench.take_samples();
        let labels: Vec<&str> = samples.iter().map(|s| s.label.as_str()).collect();
        assert!(labels.iter().any(|l| l.starts_with("runtime/flood_seeded")));
        assert!(labels.iter().any(|l| l.starts_with("runtime/flood_free")));
        assert!(labels
            .iter()
            .any(|l| l.starts_with("runtime/line_to_tree_seeded")));
        assert!(labels
            .iter()
            .any(|l| l.starts_with("runtime/line_to_tree_free")));
        for committee in ["star", "wreath"] {
            for engine in ["seeded", "free"] {
                assert!(
                    labels
                        .iter()
                        .any(|l| l.starts_with(&format!("runtime/{committee}_{engine}"))),
                    "missing runtime/{committee}_{engine} row"
                );
            }
        }
    }

    #[test]
    fn edge_stream_is_deterministic_and_loop_free() {
        let a = edge_stream(64, 256, 9);
        let b = edge_stream(64, 256, 9);
        assert_eq!(a, b);
        assert!(a.iter().all(|(u, v)| u != v));
    }
}
