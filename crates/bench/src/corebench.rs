//! CPU-performance baseline for the hot data path (`BENCH_core.json`).
//!
//! The model-level report measures rounds and activations — quantities the
//! paper's theorems are about. This module measures the *wall-clock* cost
//! of the structures those quantities are computed on: raw graph mutation,
//! distance-2 scans, `commit_round`, full algorithm executions and the
//! stress-sweep throughput. The resulting JSON is the comparison point for
//! every future performance PR (see README "Performance").
//!
//! Run with `cargo run -p adn-bench --release --bin report -- --bench`
//! (`--quick` for the reduced CI smoke pass, `--threads N` to pin the
//! sweep-throughput case to a thread count).

use crate::harness::{Bench, Sample};
use adn_analysis::stress::json_escape;
use adn_core::algorithm::{self, RunConfig};
use adn_graph::rng::DetRng;
use adn_graph::{generators, Graph, NodeId, UidAssignment, UidMap};
use adn_sim::Network;
use std::time::Instant;

/// Configuration for the core CPU benchmark.
#[derive(Debug, Clone, Copy, Default)]
pub struct CoreBenchConfig {
    /// Reduced sizes and iteration counts for the CI smoke job.
    pub quick: bool,
    /// Worker threads for the sweep-throughput case (0 = available
    /// parallelism).
    pub threads: usize,
}

/// Resolves a requested worker-thread count: `0` means one thread per
/// available core (the shared default of every parallel entry point).
pub fn resolve_threads(requested: usize) -> usize {
    if requested > 0 {
        requested
    } else {
        std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
    }
}

/// A deterministic pseudo-random edge stream on `n` nodes (no self-loops,
/// duplicates allowed — the structures under test must absorb them).
fn edge_stream(n: usize, m: usize, seed: u64) -> Vec<(NodeId, NodeId)> {
    let mut rng = DetRng::seed_from_u64(seed);
    (0..m)
        .map(|_| {
            let u = rng.gen_range(0, n);
            let mut v = rng.gen_range(0, n - 1);
            if v >= u {
                v += 1;
            }
            (NodeId(u), NodeId(v))
        })
        .collect()
}

/// A deterministic connected "scratch" graph for read-path cases.
fn scratch_graph(n: usize, extra: usize, seed: u64) -> Graph {
    generators::random_line_with_chords(n, extra, seed)
}

fn bench_graph_ops(bench: &mut Bench, quick: bool) {
    let n = if quick { 256 } else { 1024 };
    let m = if quick { 2048 } else { 16384 };
    let stream = edge_stream(n, m, 0xADD5);

    bench.measure(&format!("graph/add_remove_stream n={n} m={m}"), || {
        let mut g = Graph::new(n);
        for &(u, v) in &stream {
            let _ = g.add_edge(u, v);
        }
        for &(u, v) in &stream {
            let _ = g.remove_edge(u, v);
        }
        assert!(g.is_empty());
    });

    let g = scratch_graph(n, 4 * n, 0x5EED);
    bench.measure(&format!("graph/potential_neighbors_all n={n}"), || {
        let mut total = 0usize;
        for u in g.nodes() {
            total += g.potential_neighbors(u).len();
        }
        assert!(total > 0);
    });

    bench.measure(&format!("graph/neighbor_scan n={n}"), || {
        let mut acc = 0usize;
        for u in g.nodes() {
            for v in g.neighbors(u) {
                acc = acc.wrapping_add(v.index());
            }
        }
        std::hint::black_box(acc);
    });
}

fn bench_commit_round(bench: &mut Bench, quick: bool) {
    // Star with centre 0: every leaf pair is at distance 2, so arbitrary
    // leaf-leaf activations are valid. Stage `chunk` edges per round,
    // commit, then deactivate them over the same number of rounds — a
    // pure staging/commit workload with no algorithm logic on top.
    let n = if quick { 513 } else { 2049 };
    let chunk = 64;
    let rounds = if quick { 16 } else { 64 };
    let mut rng = DetRng::seed_from_u64(0xC0117);
    let schedule: Vec<Vec<(NodeId, NodeId)>> = (0..rounds)
        .map(|_| {
            (0..chunk)
                .map(|_| {
                    let u = rng.gen_range(1, n);
                    let mut v = rng.gen_range(1, n - 1);
                    if v >= u {
                        v += 1;
                    }
                    (NodeId(u), NodeId(v))
                })
                .collect()
        })
        .collect();

    bench.measure(
        &format!("network/commit_round star n={n} chunk={chunk} rounds={rounds}x2"),
        || {
            let mut net = Network::new(generators::star(n));
            for batch in &schedule {
                for &(u, v) in batch {
                    let _ = net.stage_activation(u, v);
                }
                net.commit_round();
            }
            for batch in &schedule {
                for &(u, v) in batch {
                    let _ = net.stage_deactivation(u, v);
                }
                net.commit_round();
            }
            assert_eq!(net.activated_edge_count(), 0);
        },
    );

    // Steady-state variant: the network outlives the closure, so the
    // measurement is staging + commit only (no construction), and every
    // iteration returns the snapshot to the initial star.
    let mut net = Network::new(generators::star(n));
    bench.measure(
        &format!("network/commit_round_steady star n={n} chunk={chunk} rounds={rounds}x2"),
        || {
            for batch in &schedule {
                for &(u, v) in batch {
                    let _ = net.stage_activation(u, v);
                }
                net.commit_round();
            }
            for batch in &schedule {
                for &(u, v) in batch {
                    let _ = net.stage_deactivation(u, v);
                }
                net.commit_round();
            }
            assert_eq!(net.activated_edge_count(), 0);
        },
    );
}

fn bench_algorithms(bench: &mut Bench, quick: bool) {
    let n = if quick { 128 } else { 512 };
    let cases: &[(&str, Graph)] = &[
        ("graph_to_star", generators::line(n)),
        ("graph_to_wreath", generators::line(n)),
        ("flooding", generators::ring(n)),
    ];
    for (id, graph) in cases {
        let a = algorithm::find(id).expect("registered algorithm");
        let uids = UidMap::new(
            graph.node_count(),
            UidAssignment::RandomPermutation { seed: 11 },
        );
        let config = RunConfig::default();
        bench.measure(&format!("algorithm/{id} n={n}"), || {
            let outcome = a.run(graph, &uids, &config).expect("clean run");
            assert!(outcome.rounds > 0);
        });
    }
}

fn bench_sweep(bench: &mut Bench, quick: bool, threads: usize) {
    let cases = if quick { 24 } else { 96 };
    bench.measure(&format!("sweep/serial cases={cases}"), || {
        let summary = adn_analysis::stress::sweep(0xBE7C4, cases);
        assert_eq!(summary.reports.len(), cases);
    });
    if threads > 1 {
        bench.measure(&format!("sweep/threads={threads} cases={cases}"), || {
            let summary = adn_analysis::stress::sweep_with_threads(0xBE7C4, cases, threads);
            assert_eq!(summary.reports.len(), cases);
        });
    }
}

/// Serializes bench samples to the `BENCH_core.json` document
/// (hand-rolled — the workspace is dependency-free).
fn to_json(cfg: &CoreBenchConfig, threads: usize, elapsed_ms: u128, samples: &[Sample]) -> String {
    let rows: Vec<String> = samples
        .iter()
        .map(|s| {
            format!(
                "{{\"case\":\"{}\",\"min_ns\":{},\"median_ns\":{},\"mean_ns\":{}}}",
                json_escape(&s.label),
                s.min.as_nanos(),
                s.median.as_nanos(),
                s.mean.as_nanos(),
            )
        })
        .collect();
    format!(
        "{{\"mode\":\"{}\",\"threads\":{},\"elapsed_ms\":{},\"rows\":[{}]}}",
        if cfg.quick { "quick" } else { "full" },
        threads,
        elapsed_ms,
        rows.join(","),
    )
}

/// Runs the core CPU benchmark and returns `(human_table, json)`.
pub fn run(cfg: &CoreBenchConfig) -> (String, String) {
    let threads = resolve_threads(cfg.threads);
    let iterations = if cfg.quick { 3 } else { 9 };
    let started = Instant::now();
    let mut bench = Bench::new("core CPU baseline", iterations);
    bench_graph_ops(&mut bench, cfg.quick);
    bench_commit_round(&mut bench, cfg.quick);
    bench_algorithms(&mut bench, cfg.quick);
    bench_sweep(&mut bench, cfg.quick, threads);
    let samples = bench.take_samples();
    let elapsed_ms = started.elapsed().as_millis();
    let mut table = format!(
        "core CPU baseline ({} mode, {iterations} iterations, sweep threads {threads})\n",
        if cfg.quick { "quick" } else { "full" },
    );
    for s in &samples {
        table.push_str(&format!(
            "{:<56} min {:>12?} median {:>12?} mean {:>12?}\n",
            s.label, s.min, s.median, s.mean
        ));
    }
    let json = to_json(cfg, threads, elapsed_ms, &samples);
    (table, json)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_bench_runs_and_serializes() {
        let (table, json) = run(&CoreBenchConfig {
            quick: true,
            threads: 1,
        });
        assert!(table.contains("core CPU baseline"));
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"mode\":\"quick\""));
        assert!(json.contains("graph/add_remove_stream"));
        assert!(json.contains("network/commit_round"));
        assert!(json.contains("sweep/serial"));
    }

    #[test]
    fn edge_stream_is_deterministic_and_loop_free() {
        let a = edge_stream(64, 256, 9);
        let b = edge_stream(64, 256, 9);
        assert_eq!(a, b);
        assert!(a.iter().all(|(u, v)| u != v));
    }
}
