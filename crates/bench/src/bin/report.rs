//! Regenerates the experiment tables and figures of the reproduction, and
//! fronts the deterministic stress suite.
//!
//! Usage:
//!
//! * `cargo run -p adn-bench --release --bin report [-- <experiment-id>]`
//!   where `<experiment-id>` is one of t1, t4, f1, f3, f4, f5, t6, f7,
//!   t8, f9 (no id = the full report, as captured in EXPERIMENTS.md);
//! * `... report -- --dst [cases]` — run the DST stress sweep (default
//!   1344 cases) and write `BENCH_dst.json`;
//! * `... report -- --replay <seed>` — replay one stress case from its
//!   `u64` seed and verify byte-identical reproduction.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("--replay") => {
            let seed: u64 = args
                .get(1)
                .and_then(|s| s.parse().ok())
                .expect("usage: report --replay <u64 seed>");
            let report = adn_bench::replay_report(seed);
            print!("{report}");
            if !report.contains("replay byte-identical: yes") {
                std::process::exit(1);
            }
        }
        Some("--dst") => {
            let cases: usize = match args.get(1) {
                Some(raw) => raw
                    .parse()
                    .unwrap_or_else(|_| panic!("usage: report --dst [case count], got `{raw}`")),
                None => adn_bench::DST_DEFAULT_CASES,
            };
            let (summary, json, suite_failures) = adn_bench::dst_suite(cases);
            std::fs::write("BENCH_dst.json", &json).expect("write BENCH_dst.json");
            print!("{summary}");
            println!("wrote BENCH_dst.json ({} bytes)", json.len());
            // A non-zero exit makes the CI stress job an actual gate.
            if suite_failures > 0 {
                std::process::exit(1);
            }
        }
        other => println!("{}", adn_bench::report_for(other)),
    }
}
