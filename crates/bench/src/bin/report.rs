//! Regenerates the experiment tables and figures of the reproduction, and
//! fronts the deterministic stress suite and the CPU-performance baseline.
//!
//! Usage:
//!
//! * `cargo run -p adn-bench --release --bin report [-- <experiment-id>]`
//!   where `<experiment-id>` is one of t1, t4, f1, f3, f4, f5, t6, f7,
//!   t8, f9 (no id = the full report, as captured in EXPERIMENTS.md);
//! * `... report -- --dst [cases] [--threads N]` — run the DST stress
//!   sweep (default 1344 cases) on `N` worker threads (default: available
//!   cores; the artifact is byte-identical for every `N`) and write
//!   `BENCH_dst.json`;
//! * `... report -- --replay <seed>` — replay one stress case from its
//!   `u64` seed and verify byte-identical reproduction;
//! * `... report -- --replay-runtime <seed>` — same, for one
//!   asynchronous-runtime case (program, workload, scenario, scheduler
//!   seed and fault plan all derived from the one seed);
//! * `... report -- --minimize <seed>` — shrink a stress case to the
//!   smallest fault budget that still fails and print the minimized
//!   seed, budget and fault-kind histogram;
//! * `... report -- --runtime [cases] [--threads N]` — run the
//!   asynchronous-runtime seed sweep (seeded scheduler, async scenarios)
//!   and verify byte-identical replay on a subset;
//! * `... report -- --dump-renders-traced [cases]` — render a slice of
//!   the stress sweep with per-round tracing enabled (byte-identical to
//!   the untraced dump; exercises the traced `max_degree` path);
//! * `... report -- --bench [--quick] [--threads N]` — run the CPU-perf
//!   baseline of the hot data path and write `BENCH_core.json`
//!   (`--quick` is the reduced CI smoke pass).

/// Extracts `--threads N` from `args` (removing both tokens); `None` when
/// the flag is absent.
fn take_threads(args: &mut Vec<String>) -> Option<usize> {
    let pos = args.iter().position(|a| a == "--threads")?;
    let value = args
        .get(pos + 1)
        .and_then(|s| s.parse().ok())
        .expect("usage: --threads <positive integer>");
    args.drain(pos..=pos + 1);
    Some(value)
}

/// Extracts `--check <path>` from `args` (removing both tokens); `None`
/// when the flag is absent.
fn take_check(args: &mut Vec<String>) -> Option<String> {
    let pos = args.iter().position(|a| a == "--check")?;
    let value = args
        .get(pos + 1)
        .cloned()
        .expect("usage: --check <baseline json path>");
    args.drain(pos..=pos + 1);
    Some(value)
}

fn take_flag(args: &mut Vec<String>, flag: &str) -> bool {
    if let Some(pos) = args.iter().position(|a| a == flag) {
        args.remove(pos);
        true
    } else {
        false
    }
}

/// Rejects flags a subcommand does not honor instead of silently
/// swallowing them.
fn reject_unused(subcommand: &str, threads: Option<usize>, quick: bool, threads_ok: bool) {
    if threads.is_some() && !threads_ok {
        panic!("`{subcommand}` does not take --threads");
    }
    if quick {
        panic!("`{subcommand}` does not take --quick");
    }
}

fn reject_check(subcommand: &str, check: &Option<String>) {
    if check.is_some() {
        panic!("`{subcommand}` does not take --check");
    }
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let threads = take_threads(&mut args);
    let quick = take_flag(&mut args, "--quick");
    let check = take_check(&mut args);
    let first = args.first().cloned();
    match first.as_deref() {
        Some("--replay") => {
            reject_unused("--replay", threads, quick, false);
            reject_check("--replay", &check);
            let seed: u64 = args
                .get(1)
                .and_then(|s| s.parse().ok())
                .expect("usage: report --replay <u64 seed>");
            let report = adn_bench::replay_report(seed);
            print!("{report}");
            if !report.contains("replay byte-identical: yes") {
                std::process::exit(1);
            }
        }
        Some("--replay-runtime") => {
            reject_unused("--replay-runtime", threads, quick, false);
            reject_check("--replay-runtime", &check);
            let seed: u64 = args
                .get(1)
                .and_then(|s| s.parse().ok())
                .expect("usage: report --replay-runtime <u64 seed>");
            let report = adn_bench::runtime_replay_report(seed);
            print!("{report}");
            if !report.contains("replay byte-identical: yes") {
                std::process::exit(1);
            }
        }
        Some("--minimize") => {
            reject_unused("--minimize", threads, quick, false);
            reject_check("--minimize", &check);
            let seed: u64 = args
                .get(1)
                .and_then(|s| s.parse().ok())
                .expect("usage: report --minimize <u64 seed>");
            let (report, _was_failing) = adn_bench::minimize_report(seed);
            print!("{report}");
        }
        Some("--runtime") => {
            reject_unused("--runtime", None, quick, true);
            reject_check("--runtime", &check);
            let cases: usize = match args.get(1) {
                Some(raw) => raw.parse().unwrap_or_else(|_| {
                    panic!("usage: report --runtime [case count], got `{raw}`")
                }),
                None => 96,
            };
            let threads = adn_bench::corebench::resolve_threads(threads.unwrap_or(0));
            let (summary, failures) = adn_bench::runtime_suite(cases, threads);
            print!("{summary}");
            // A non-zero exit makes the CI runtime-smoke job a gate.
            if failures > 0 {
                std::process::exit(1);
            }
        }
        Some("--dst") => {
            reject_unused("--dst", None, quick, true);
            reject_check("--dst", &check);
            let cases: usize = match args.get(1) {
                Some(raw) => raw
                    .parse()
                    .unwrap_or_else(|_| panic!("usage: report --dst [case count], got `{raw}`")),
                None => adn_bench::DST_DEFAULT_CASES,
            };
            let threads = adn_bench::corebench::resolve_threads(threads.unwrap_or(0));
            let (summary, json, suite_failures) = adn_bench::dst_suite(cases, threads);
            std::fs::write("BENCH_dst.json", &json).expect("write BENCH_dst.json");
            print!("{summary}");
            println!(
                "wrote BENCH_dst.json ({} bytes, {threads} threads)",
                json.len()
            );
            // A non-zero exit makes the CI stress job an actual gate.
            if suite_failures > 0 {
                std::process::exit(1);
            }
        }
        Some("--dump-renders") => {
            reject_unused("--dump-renders", None, quick, true);
            reject_check("--dump-renders", &check);
            let cases: usize = match args.get(1) {
                Some(raw) => raw.parse().unwrap_or_else(|_| {
                    panic!("usage: report --dump-renders [case count], got `{raw}`")
                }),
                None => adn_bench::DST_DEFAULT_CASES,
            };
            let threads = adn_bench::corebench::resolve_threads(threads.unwrap_or(0));
            print!("{}", adn_bench::dump_renders(cases, threads));
        }
        Some("--dump-renders-traced") => {
            reject_unused("--dump-renders-traced", threads, quick, false);
            reject_check("--dump-renders-traced", &check);
            let cases: usize = match args.get(1) {
                Some(raw) => raw.parse().unwrap_or_else(|_| {
                    panic!("usage: report --dump-renders-traced [case count], got `{raw}`")
                }),
                None => 96,
            };
            print!("{}", adn_bench::dump_renders_traced(cases));
        }
        Some("--bench") => {
            // Read the baseline *before* running: the run overwrites
            // BENCH_core.json, which is the usual baseline path.
            let baseline = check.as_ref().map(|path| {
                std::fs::read_to_string(path)
                    .unwrap_or_else(|e| panic!("--check {path}: cannot read baseline: {e}"))
            });
            let cfg = adn_bench::corebench::CoreBenchConfig {
                quick,
                threads: threads.unwrap_or(0),
            };
            let (table, json) = adn_bench::corebench::run(&cfg);
            std::fs::write("BENCH_core.json", &json).expect("write BENCH_core.json");
            print!("{table}");
            println!("wrote BENCH_core.json ({} bytes)", json.len());
            if let Some(baseline) = baseline {
                match adn_bench::corebench::check_against_baseline(&baseline, &json, 2.0) {
                    Ok(verdict) => print!("{verdict}"),
                    Err(failure) => {
                        // A non-zero exit makes the CI bench-smoke job an
                        // actual regression gate.
                        eprintln!("{failure}");
                        std::process::exit(1);
                    }
                }
            }
        }
        other => {
            reject_unused("the experiment report", threads, quick, false);
            reject_check("the experiment report", &check);
            println!("{}", adn_bench::report_for(other));
        }
    }
}
