//! Regenerates the experiment tables and figures of the reproduction.
//!
//! Usage: `cargo run -p adn-bench --release --bin report [-- <experiment-id>]`
//! where `<experiment-id>` is one of t1, t4, f1, f3, f4, f5, t6, f7, t8, f9.
//! Without an id the full report (as captured in EXPERIMENTS.md) is printed.

fn main() {
    let arg = std::env::args().nth(1);
    println!("{}", adn_bench::report_for(arg.as_deref()));
}
