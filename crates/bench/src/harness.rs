//! Minimal, dependency-free wall-clock benchmark harness.
//!
//! Each bench target is a plain binary (`harness = false`): it builds its
//! workloads, calls [`Bench::measure`] per case and prints one table. The
//! harness runs a warm-up iteration, then a fixed number of timed
//! iterations, and reports min / median / mean wall-clock times — enough
//! to compare the algorithms' scaling, which is what the paper's
//! experiments are about (statistical rigor at the nanosecond level is
//! not; use an external profiler for that).

use std::time::{Duration, Instant};

/// One benchmark group: collects rows and prints them on drop.
pub struct Bench {
    group: String,
    iterations: usize,
    rows: Vec<Row>,
}

struct Row {
    label: String,
    min: Duration,
    median: Duration,
    mean: Duration,
    stats: Vec<(String, u128)>,
}

/// A measured case, harvested with [`Bench::take_samples`] for
/// machine-readable output (e.g. the `BENCH_core.json` artifact) instead
/// of the printed table.
#[derive(Debug, Clone)]
pub struct Sample {
    /// The case label passed to [`Bench::measure`].
    pub label: String,
    /// Fastest timed iteration.
    pub min: Duration,
    /// Median timed iteration.
    pub median: Duration,
    /// Mean over all timed iterations.
    pub mean: Duration,
    /// Extra per-case counters attached with [`Bench::annotate`] (e.g.
    /// `bytes_per_node` on the scaling rows), emitted as additional JSON
    /// keys on the row.
    pub stats: Vec<(String, u128)>,
}

impl Bench {
    /// Creates a group that runs every case `iterations` times (after one
    /// untimed warm-up iteration).
    pub fn new(group: &str, iterations: usize) -> Self {
        assert!(iterations >= 1, "at least one timed iteration is required");
        Bench {
            group: group.to_string(),
            iterations,
            rows: Vec::new(),
        }
    }

    /// Times `f` and records a row under `label`.
    pub fn measure<F: FnMut()>(&mut self, label: &str, mut f: F) {
        f(); // warm-up
        let mut samples: Vec<Duration> = (0..self.iterations)
            .map(|_| {
                let start = Instant::now();
                f();
                start.elapsed()
            })
            .collect();
        samples.sort_unstable();
        let min = samples[0];
        let median = samples[samples.len() / 2];
        let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
        self.rows.push(Row {
            label: label.to_string(),
            min,
            median,
            mean,
            stats: Vec::new(),
        });
    }

    /// Times `f` exactly once, with no warm-up iteration — for the large
    /// scaling cases where a second multi-second run would double the
    /// cost of the row without improving the estimate. The single cold
    /// sample is recorded as min = median = mean.
    pub fn measure_cold<F: FnOnce()>(&mut self, label: &str, f: F) {
        let start = Instant::now();
        f();
        let d = start.elapsed();
        self.rows.push(Row {
            label: label.to_string(),
            min: d,
            median: d,
            mean: d,
            stats: Vec::new(),
        });
    }

    /// Attaches a named counter to the most recently measured case (a
    /// memory footprint, a work count — anything worth committing next to
    /// the timings). No-op when nothing has been measured yet.
    pub fn annotate(&mut self, key: &str, value: u128) {
        if let Some(row) = self.rows.last_mut() {
            row.stats.push((key.to_string(), value));
        }
    }

    /// Drains the recorded rows as [`Sample`]s, suppressing the printed
    /// table (nothing is left for [`Bench::report`] / drop to print).
    pub fn take_samples(&mut self) -> Vec<Sample> {
        self.rows
            .drain(..)
            .map(|r| Sample {
                label: r.label,
                min: r.min,
                median: r.median,
                mean: r.mean,
                stats: r.stats,
            })
            .collect()
    }

    /// Prints the group's table. Called automatically on drop; exposed for
    /// explicit flushing in tests.
    pub fn report(&mut self) {
        if self.rows.is_empty() {
            return;
        }
        println!("\n### {} ({} iterations)\n", self.group, self.iterations);
        println!(
            "{:<44} {:>12} {:>12} {:>12}",
            "case", "min", "median", "mean"
        );
        for row in &self.rows {
            println!(
                "{:<44} {:>12} {:>12} {:>12}",
                row.label,
                format_duration(row.min),
                format_duration(row.median),
                format_duration(row.mean),
            );
        }
        self.rows.clear();
    }
}

impl Drop for Bench {
    fn drop(&mut self) {
        self.report();
    }
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.1} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.3} s", nanos as f64 / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_and_reports() {
        let mut bench = Bench::new("test-group", 3);
        let mut counter = 0u64;
        bench.measure("noop", || {
            counter += 1;
        });
        // warm-up + 3 timed iterations
        assert_eq!(counter, 4);
        assert_eq!(bench.rows.len(), 1);
        bench.report();
        assert!(bench.rows.is_empty());
    }

    #[test]
    fn annotate_attaches_to_the_last_measured_case() {
        let mut bench = Bench::new("g", 1);
        bench.annotate("orphan", 1); // before any measurement: dropped
        bench.measure("case", || {});
        bench.annotate("bytes_per_node", 42);
        let samples = bench.take_samples();
        assert_eq!(samples[0].stats, vec![("bytes_per_node".to_string(), 42)]);
    }

    #[test]
    fn duration_formatting_covers_the_ranges() {
        assert!(format_duration(Duration::from_nanos(12)).ends_with("ns"));
        assert!(format_duration(Duration::from_micros(12)).ends_with("µs"));
        assert!(format_duration(Duration::from_millis(12)).ends_with("ms"));
        assert!(format_duration(Duration::from_secs(2)).ends_with("s"));
    }
}
