//! # adn-bench
//!
//! Wall-clock benchmarks (one per algorithm family, driven by the
//! algorithm registry through the dependency-free [`harness`]) and the
//! `report` binary that regenerates every model-level table and figure of
//! the reproduction (rounds, activations, degrees — the quantities the
//! paper's theorems are about, which are independent of wall-clock time).
//!
//! * `cargo bench -p adn-bench` — wall-clock benchmarks.
//! * `cargo run -p adn-bench --release --bin report` — full experiment
//!   report (all tables/figures, as captured in EXPERIMENTS.md).
//! * `cargo run -p adn-bench --release --bin report -- t1` — a single
//!   experiment (ids: t1, t4, f1, f3, f4, f5, t6, f7, t8, f9).

pub mod harness;

/// Returns the experiment fragment for the given id, or the full report
/// when `id` is `None` / unrecognised.
pub fn report_for(id: Option<&str>) -> String {
    use adn_analysis::experiments as ex;
    match id {
        Some("t1") => ex::t1_contribution_table(&[64, 128, 256, 512], 256),
        Some("t4") => ex::t4_clique_baseline(&[32, 64, 128, 256]),
        Some("f1") => ex::f1_subroutines(&[64, 128, 256, 512, 1024]),
        Some("f3") => ex::f3_async_equivalence(&[64, 256]),
        Some("f4") => ex::f4_committee_decay(256, 11),
        Some("f5") => ex::f5_time_lower_bound(&[64, 128, 256, 512]),
        Some("t6") => ex::t6_centralized(&[64, 128, 256, 512, 1024]),
        Some("f7") => ex::f7_distributed_lower_bound(&[64, 128, 256, 512]),
        Some("t8") => ex::t8_tasks(&[64, 128, 256, 512]),
        Some("f9") => ex::f9_tradeoff(256),
        _ => ex::run_all_default(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_experiment_lookup_works() {
        let s = report_for(Some("f4"));
        assert!(s.contains("committees alive"));
    }
}
