//! # adn-bench
//!
//! Wall-clock benchmarks (one per algorithm family, driven by the
//! algorithm registry through the dependency-free [`harness`]) and the
//! `report` binary that regenerates every model-level table and figure of
//! the reproduction (rounds, activations, degrees — the quantities the
//! paper's theorems are about, which are independent of wall-clock time).
//!
//! * `cargo bench -p adn-bench` — wall-clock benchmarks.
//! * `cargo run -p adn-bench --release --bin report` — full experiment
//!   report (all tables/figures, as captured in EXPERIMENTS.md).
//! * `cargo run -p adn-bench --release --bin report -- t1` — a single
//!   experiment (ids: t1, t4, f1, f3, f4, f5, t6, f7, t8, f9).
//! * `cargo run -p adn-bench --release --bin report -- --dst [cases]
//!   [--threads N]` — the deterministic stress suite (default 1344 cases
//!   ≈ 64 seeds × 7 algorithms × 3 fault scenarios) on `N` worker
//!   threads; writes `BENCH_dst.json` (byte-identical for every `N`).
//! * `cargo run -p adn-bench --release --bin report -- --replay <seed>` —
//!   replays one stress case from its `u64` seed and verifies the rerun
//!   is byte-identical.
//! * `cargo run -p adn-bench --release --bin report -- --minimize
//!   <seed>` — shrinks a stress case to the smallest failing fault
//!   budget (minimized seed + fault-kind histogram).
//! * `cargo run -p adn-bench --release --bin report -- --runtime [cases]
//!   [--threads N]` — the asynchronous-runtime seed sweep with replay
//!   verification (the CI `runtime-smoke` gate).
//! * `cargo run -p adn-bench --release --bin report -- --bench [--quick]
//!   [--threads N] [--check <baseline.json>]` — the CPU-performance
//!   baseline of the hot data path; writes `BENCH_core.json` and, with
//!   `--check`, fails on a >2x `min_ns` regression against the given
//!   committed baseline (the CI `bench-smoke` gate, see [`corebench`]).

pub mod corebench;
pub mod harness;

/// Master seed of the CI stress sweep (any u64 works; fixed so the CI
/// artifact is comparable across commits).
pub const DST_MASTER_SEED: u64 = 0xD57_5EED;

/// Default case count for the stress sweep: 64 seeds for every
/// (algorithm, fault scenario) pair of the 7-algorithm registry and the
/// 3 primary fault scenarios.
pub const DST_DEFAULT_CASES: usize = 64 * 7 * 3;

/// Runs the deterministic stress sweep on `threads` worker threads
/// (`0` or `1` = serial) and returns
/// `(summary_text, json, suite_failure_count)` — the JSON is what CI
/// stores as `BENCH_dst.json`; a non-zero failure count should fail the
/// caller. The output is byte-identical for every thread count.
pub fn dst_suite(cases: usize, threads: usize) -> (String, String, usize) {
    let summary = adn_analysis::stress::sweep_with_threads(DST_MASTER_SEED, cases, threads);
    let failures = summary.suite_failures().len();
    (summary.summary_text(), summary.to_json(), failures)
}

/// Renders every per-case report of the stress sweep into one string —
/// the byte-identity artifact perf refactors diff against (`report --
/// --dump-renders [cases]`). The concatenation is byte-identical for
/// every thread count, like the sweep summary itself.
pub fn dump_renders(cases: usize, threads: usize) -> String {
    let summary = adn_analysis::stress::sweep_with_threads(DST_MASTER_SEED, cases, threads);
    render_reports(&summary.reports)
}

/// Like [`dump_renders`], but every case runs with per-round tracing
/// enabled (`report -- --dump-renders-traced [cases]`) — the CI traced
/// stress-sweep slice. Tracing is an observer, so the output is
/// byte-identical to the untraced dump of the same prefix; the point is
/// that the traced `max_degree` path (degree histogram + debug-build
/// from-scratch oracle) runs under real adversarial schedules.
pub fn dump_renders_traced(cases: usize) -> String {
    let summary = adn_analysis::stress::sweep_traced(DST_MASTER_SEED, cases);
    render_reports(&summary.reports)
}

fn render_reports(reports: &[adn_analysis::stress::StressReport]) -> String {
    let mut out = String::new();
    for report in reports {
        out.push_str(&report.render());
        out.push_str("----\n");
    }
    out
}

/// Master seed of the asynchronous-runtime sweep (fixed for comparable
/// CI artifacts, like [`DST_MASTER_SEED`]).
pub const RUNTIME_MASTER_SEED: u64 = 0xA5_15EED;

/// Runs the asynchronous-runtime seed sweep on `threads` worker threads
/// and verifies byte-identical replay on a subset of its cases. Returns
/// `(summary_text, failure_count)`: failures are runs that did not
/// complete plus replays that diverged — a non-zero count should fail
/// the caller (the CI `runtime-smoke` gate).
pub fn runtime_suite(cases: usize, threads: usize) -> (String, usize) {
    use adn_analysis::runtime_sweep;
    let summary = runtime_sweep::sweep_with_threads(RUNTIME_MASTER_SEED, cases, threads);
    let mut failures = summary.failures().len();
    let mut text = summary.summary_text();
    let verified = summary.reports.len().min(8);
    let mut diverged = 0usize;
    for report in summary.reports.iter().take(verified) {
        let (again, identical) = runtime_sweep::verify_replay(report.case.seed);
        if !identical || again.render() != report.render() {
            diverged += 1;
            text.push_str(&format!(
                "  REPLAY DIVERGED seed={} ({} on {} under {} sched_seed={}) — determinism \
                 bug, replay with `report -- --replay-runtime {}`\n",
                report.case.seed,
                report.case.program.name(),
                report.case.family,
                report.case.scenario.name,
                report.case.sched_seed,
                report.case.seed,
            ));
        }
    }
    failures += diverged;
    text.push_str(&format!(
        "replay verified on {verified} case(s): {}\n",
        if diverged == 0 {
            "byte-identical".to_string()
        } else {
            format!("{diverged} DIVERGED")
        }
    ));
    (text, failures)
}

/// Minimizes a seed-derived stress case: shrinks its fault budget to the
/// smallest count that still reproduces a non-clean run, and renders the
/// minimized seed, budget and fault-kind histogram. Returns the verdict
/// text and whether the case was non-clean at all.
pub fn minimize_report(seed: u64) -> (String, bool) {
    let case = adn_analysis::stress::StressCase::from_seed(seed);
    match adn_analysis::stress::minimize(&case) {
        Some(minimized) => (minimized.render(), true),
        None => (
            format!("case seed={seed} is clean at its full fault budget — nothing to minimize\n"),
            false,
        ),
    }
}

/// Replays one stress case from its seed, twice, and reports whether the
/// two runs rendered byte-identically.
pub fn replay_report(seed: u64) -> String {
    let (report, identical) = adn_analysis::stress::verify_replay(seed);
    let verdict = if identical {
        "replay byte-identical: yes"
    } else {
        "replay byte-identical: NO — determinism bug, please report"
    };
    format!("{}{verdict}\n", report.render())
}

/// Replays one asynchronous-runtime case from its seed, twice, and
/// reports whether the two runs rendered byte-identically — the runtime
/// counterpart of [`replay_report`], fronted by `report -- --replay-runtime`.
pub fn runtime_replay_report(seed: u64) -> String {
    let (report, identical) = adn_analysis::runtime_sweep::verify_replay(seed);
    let verdict = if identical {
        "replay byte-identical: yes"
    } else {
        "replay byte-identical: NO — determinism bug, please report"
    };
    format!("{}{verdict}\n", report.render())
}

/// Returns the experiment fragment for the given id, or the full report
/// when `id` is `None` / unrecognised.
pub fn report_for(id: Option<&str>) -> String {
    use adn_analysis::experiments as ex;
    match id {
        Some("t1") => ex::t1_contribution_table(&[64, 128, 256, 512], 256),
        Some("t4") => ex::t4_clique_baseline(&[32, 64, 128, 256]),
        Some("f1") => ex::f1_subroutines(&[64, 128, 256, 512, 1024]),
        Some("f3") => ex::f3_async_equivalence(&[64, 256]),
        Some("f4") => ex::f4_committee_decay(256, 11),
        Some("f5") => ex::f5_time_lower_bound(&[64, 128, 256, 512]),
        Some("t6") => ex::t6_centralized(&[64, 128, 256, 512, 1024]),
        Some("f7") => ex::f7_distributed_lower_bound(&[64, 128, 256, 512]),
        Some("t8") => ex::t8_tasks(&[64, 128, 256, 512]),
        Some("f9") => ex::f9_tradeoff(256),
        _ => ex::run_all_default(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_experiment_lookup_works() {
        let s = report_for(Some("f4"));
        assert!(s.contains("committees alive"));
    }

    #[test]
    fn dst_suite_runs_and_serializes() {
        let (summary, json, suite_failures) = dst_suite(6, 1);
        assert!(summary.contains("cases=6"), "{summary}");
        assert!(json.contains("\"cases\":6"), "{json}");
        assert_eq!(suite_failures, 0, "{summary}");
        // Parallel execution changes nothing about the artifact.
        let (_, json2, _) = dst_suite(6, 3);
        assert_eq!(json, json2);
    }

    #[test]
    fn replay_report_confirms_determinism() {
        let s = replay_report(7);
        assert!(s.contains("replay byte-identical: yes"), "{s}");
    }

    #[test]
    fn runtime_suite_completes_and_verifies_replay() {
        let (summary, failures) = runtime_suite(6, 2);
        assert_eq!(failures, 0, "{summary}");
        assert!(summary.contains("cases=6"), "{summary}");
        assert!(summary.contains("byte-identical"), "{summary}");
        // The artifact is thread-count invariant.
        let (serial, _) = runtime_suite(6, 1);
        assert_eq!(summary, serial);
    }
}
