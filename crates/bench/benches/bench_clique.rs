//! Wall-clock benchmark for clique_formation (the Section 1.2 straw-man), driven through the
//! algorithm registry.

use adn_bench::harness::Bench;
use adn_core::algorithm::{find, RunConfig};
use adn_graph::{GraphFamily, UidAssignment, UidMap};

fn main() {
    let algorithm = find("clique_formation").expect("registered algorithm");
    let mut bench = Bench::new("clique_formation", 10);
    for family in [GraphFamily::Line, GraphFamily::Ring] {
        for n in [32usize, 128] {
            let graph = family.generate(n, 1);
            let uids = UidMap::new(
                graph.node_count(),
                UidAssignment::RandomPermutation { seed: 1 },
            );
            bench.measure(&format!("{}/{n}", family.name()), || {
                algorithm
                    .run(&graph, &uids, &RunConfig::default())
                    .expect("benchmark run succeeds");
            });
        }
    }
}
