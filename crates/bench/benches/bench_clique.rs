//! Wall-clock benchmark for the clique-formation baseline (experiment T4).

use adn_core::baselines::clique::run_clique_formation;
use adn_graph::{GraphFamily, UidAssignment, UidMap};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("clique_formation");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    for n in [32usize, 64, 128] {
        let graph = GraphFamily::Ring.generate(n, 1);
        let uids = UidMap::new(graph.node_count(), UidAssignment::Sequential);
        group.bench_with_input(
            BenchmarkId::new("ring", n),
            &(graph, uids),
            |b, (graph, uids)| b.iter(|| run_clique_formation(graph, uids).unwrap()),
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
