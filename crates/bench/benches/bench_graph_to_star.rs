//! Wall-clock benchmark for GraphToStar (experiment T1, Section 3).

use adn_core::graph_to_star::run_graph_to_star;
use adn_graph::{GraphFamily, UidAssignment, UidMap};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("graph_to_star");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    for family in [GraphFamily::Line, GraphFamily::SparseRandom] {
        for n in [64usize, 256] {
            let graph = family.generate(n, 1);
            let uids = UidMap::new(graph.node_count(), UidAssignment::RandomPermutation { seed: 1 });
            group.bench_with_input(
                BenchmarkId::new(family.name(), n),
                &(graph, uids),
                |b, (graph, uids)| b.iter(|| run_graph_to_star(graph, uids).unwrap()),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
