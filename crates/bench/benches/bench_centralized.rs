//! Wall-clock benchmarks for the centralized strategies (experiments T6/F6).

use adn_core::centralized::{run_centralized_general, run_cut_in_half_on_line};
use adn_graph::{generators, GraphFamily, NodeId, UidAssignment, UidMap};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("centralized");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    for n in [256usize, 1024] {
        let line = generators::line(n);
        let order: Vec<NodeId> = (0..n).map(NodeId).collect();
        group.bench_with_input(
            BenchmarkId::new("cut_in_half/line", n),
            &(line, order),
            |b, (g, order)| b.iter(|| run_cut_in_half_on_line(g, order).unwrap()),
        );
        let graph = GraphFamily::SparseRandom.generate(n, 1);
        let uids = UidMap::new(graph.node_count(), UidAssignment::RandomPermutation { seed: 1 });
        group.bench_with_input(
            BenchmarkId::new("euler_cut_in_half/sparse_random", n),
            &(graph, uids),
            |b, (g, uids)| b.iter(|| run_centralized_general(g, uids, true).unwrap()),
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
