//! Wall-clock benchmark for centralized_general (Theorem 6.3), driven through the
//! algorithm registry.

use adn_bench::harness::Bench;
use adn_core::algorithm::{find, RunConfig};
use adn_graph::{GraphFamily, UidAssignment, UidMap};

fn main() {
    let algorithm = find("centralized_general").expect("registered algorithm");
    let mut bench = Bench::new("centralized_general", 10);
    for family in [GraphFamily::Line, GraphFamily::SparseRandom] {
        for n in [256usize, 1024] {
            let graph = family.generate(n, 1);
            let uids = UidMap::new(
                graph.node_count(),
                UidAssignment::RandomPermutation { seed: 1 },
            );
            bench.measure(&format!("{}/{n}", family.name()), || {
                algorithm
                    .run(&graph, &uids, &RunConfig::default())
                    .expect("benchmark run succeeds");
            });
        }
    }
}
