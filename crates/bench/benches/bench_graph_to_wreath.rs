//! Wall-clock benchmark for graph_to_wreath (experiment T2, Section 4), driven through the
//! algorithm registry.

use adn_bench::harness::Bench;
use adn_core::algorithm::{find, RunConfig};
use adn_graph::{GraphFamily, UidAssignment, UidMap};

fn main() {
    let algorithm = find("graph_to_wreath").expect("registered algorithm");
    let mut bench = Bench::new("graph_to_wreath", 10);
    for family in [GraphFamily::Ring, GraphFamily::BoundedDegreeConnected] {
        for n in [64usize, 256] {
            let graph = family.generate(n, 1);
            let uids = UidMap::new(
                graph.node_count(),
                UidAssignment::RandomPermutation { seed: 1 },
            );
            bench.measure(&format!("{}/{n}", family.name()), || {
                algorithm
                    .run(&graph, &uids, &RunConfig::default())
                    .expect("benchmark run succeeds");
            });
        }
    }
}
