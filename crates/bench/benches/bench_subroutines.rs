//! Wall-clock benchmarks for the basic subroutines (experiments F1–F3).

use adn_bench::harness::Bench;
use adn_core::subroutines::{run_line_to_tree, run_tree_to_star, LineToTreeConfig};
use adn_graph::{generators, NodeId, RootedTree};
use adn_sim::Network;

fn main() {
    let mut bench = Bench::new("subroutines", 10);
    for n in [256usize, 1024] {
        let line_graph = generators::line(n);
        let tree = RootedTree::from_tree_graph(&line_graph, NodeId(0)).unwrap();
        bench.measure(&format!("tree_to_star/line/{n}"), || {
            let mut net = Network::new(line_graph.clone());
            run_tree_to_star(&mut net, &tree).unwrap();
        });
        let order: Vec<NodeId> = (0..n).map(NodeId).collect();
        bench.measure(&format!("line_to_cbt/{n}"), || {
            let mut net = Network::new(line_graph.clone());
            run_line_to_tree(&mut net, &order, &LineToTreeConfig::binary()).unwrap();
        });
    }
}
