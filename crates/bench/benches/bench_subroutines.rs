//! Wall-clock benchmarks for the basic subroutines (experiments F1–F3).

use adn_core::subroutines::{run_line_to_tree, run_tree_to_star, LineToTreeConfig};
use adn_graph::{generators, NodeId, RootedTree};
use adn_sim::Network;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("subroutines");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    for n in [256usize, 1024] {
        let line_graph = generators::line(n);
        let tree = RootedTree::from_tree_graph(&line_graph, NodeId(0)).unwrap();
        group.bench_with_input(
            BenchmarkId::new("tree_to_star/line", n),
            &(line_graph.clone(), tree),
            |b, (g, tree)| {
                b.iter(|| {
                    let mut net = Network::new(g.clone());
                    run_tree_to_star(&mut net, tree).unwrap()
                })
            },
        );
        let order: Vec<NodeId> = (0..n).map(NodeId).collect();
        group.bench_with_input(
            BenchmarkId::new("line_to_cbt", n),
            &(line_graph, order),
            |b, (g, order)| {
                b.iter(|| {
                    let mut net = Network::new(g.clone());
                    run_line_to_tree(&mut net, order, &LineToTreeConfig::binary()).unwrap()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
