//! Wall-clock benchmarks for the task layer (experiment T8): flooding on
//! the initial network vs transform-then-disseminate.

use adn_core::graph_to_star::run_graph_to_star;
use adn_core::tasks::{disseminate_after_transformation, disseminate_by_flooding_only};
use adn_graph::{generators, UidAssignment, UidMap};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("tasks");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    for n in [64usize, 256] {
        let graph = generators::line(n);
        let uids = UidMap::new(n, UidAssignment::RandomPermutation { seed: 1 });
        group.bench_with_input(
            BenchmarkId::new("flooding_only/line", n),
            &(graph.clone(), uids.clone()),
            |b, (g, uids)| b.iter(|| disseminate_by_flooding_only(g, uids).unwrap()),
        );
        group.bench_with_input(
            BenchmarkId::new("transform_then_disseminate/line", n),
            &(graph, uids),
            |b, (g, uids)| {
                b.iter(|| {
                    let outcome = run_graph_to_star(g, uids).unwrap();
                    disseminate_after_transformation(&outcome, uids).unwrap()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
