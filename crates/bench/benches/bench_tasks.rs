//! Wall-clock benchmarks for the task layer (experiment T8): flooding on
//! the initial network vs transform-then-disseminate.

use adn_bench::harness::Bench;
use adn_core::algorithm::{find, RunConfig};
use adn_core::tasks::{disseminate_after_transformation, disseminate_by_flooding_only};
use adn_graph::{generators, UidAssignment, UidMap};

fn main() {
    let star = find("graph_to_star").expect("registered algorithm");
    let mut bench = Bench::new("tasks", 10);
    for n in [64usize, 256] {
        let graph = generators::line(n);
        let uids = UidMap::new(n, UidAssignment::RandomPermutation { seed: 1 });
        bench.measure(&format!("flooding_only/line/{n}"), || {
            disseminate_by_flooding_only(&graph, &uids).unwrap();
        });
        bench.measure(&format!("transform_then_disseminate/line/{n}"), || {
            let outcome = star.run(&graph, &uids, &RunConfig::default()).unwrap();
            disseminate_after_transformation(&outcome, &uids).unwrap();
        });
    }
}
