//! Quickstart: reconfigure a high-diameter network into a spanning star,
//! elect a leader, and inspect the paper's edge-complexity measures —
//! all through the `Experiment` builder.
//!
//! Run with: `cargo run --release --example quickstart`

use actively_dynamic_networks::prelude::*;

fn main() -> Result<(), CoreError> {
    // A spanning line: the paper's canonical worst case (diameter n - 1).
    let n = 256;
    let graph = generators::line(n);
    let uids = UidMap::new(n, UidAssignment::RandomPermutation { seed: 42 });

    println!(
        "initial network : spanning line, n = {n}, diameter = {:?}",
        traversal::diameter(&graph)
    );

    // GraphToStar (Section 3): O(log n) rounds, O(n log n) activations.
    let outcome = Experiment::on(graph.clone())
        .uids(UidAssignment::RandomPermutation { seed: 42 })
        .algorithm("graph_to_star")
        .trace(TraceLevel::PerRound)
        .run()?;

    println!(
        "elected leader  : {} (max UID? {})",
        outcome.leader,
        verify_leader_election(&outcome, &uids)
    );
    println!("final diameter  : {:?}", outcome.final_diameter());
    println!("rounds          : {}", outcome.rounds);
    println!("phases          : {}", outcome.phases);
    println!(
        "total edge activations      : {}",
        outcome.metrics.total_activations
    );
    println!(
        "max activated edges / round : {}",
        outcome.metrics.max_activated_edges
    );
    println!(
        "max activated degree        : {}",
        outcome.metrics.max_activated_degree
    );
    println!(
        "committees per phase        : {:?}",
        outcome.committees_per_phase
    );
    println!("traced rounds               : {}", outcome.trace.len());

    // Composition (Section 1.3): disseminate every token over the new
    // low-diameter network and compare with flooding the original line.
    let report = disseminate_after_transformation(&outcome, &uids)?;
    let (flood_rounds, _) = disseminate_by_flooding_only(&graph, &uids)?;
    println!(
        "token dissemination: flooding G_s = {flood_rounds} rounds, transform + disseminate = {} rounds",
        report.transformation_rounds + report.dissemination_rounds
    );
    Ok(())
}
