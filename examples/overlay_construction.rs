//! Overlay-network construction scenario (Related Work, Section 1.4):
//! a peer-to-peer system starts from a sparse bounded-degree topology and
//! wants a low-diameter, bounded-degree overlay. GraphToWreath builds a
//! spanning complete binary tree (diameter O(log n)) while never exceeding
//! a constant activated degree — the property overlay networks care about.
//!
//! Run with: `cargo run --release --example overlay_construction`

use actively_dynamic_networks::prelude::*;

fn main() -> Result<(), CoreError> {
    let n = 512;
    // Bounded-degree peer topology: a ring with a few random chords.
    let graph = GraphFamily::BoundedDegreeConnected.generate(n, 7);
    let uids = UidAssignment::RandomPermutation { seed: 7 };

    println!(
        "initial overlay : n = {}, max degree = {}, diameter = {:?}",
        graph.node_count(),
        graph.max_degree(),
        traversal::diameter(&graph)
    );

    for id in ["graph_to_wreath", "graph_to_thin_wreath"] {
        let spec = find_algorithm(id).expect("registered").spec();
        let outcome = Experiment::on(graph.clone())
            .uids(uids)
            .algorithm(id)
            .run()?;
        let tree = RootedTree::from_tree_graph(&outcome.final_graph, outcome.leader)
            .expect("final overlay is a spanning tree");
        println!(
            "{:<18}: rounds = {:4}, activations = {:6}, max degree during run = {:2}, final depth = {:2}  [{} time]",
            spec.name,
            outcome.rounds,
            outcome.metrics.total_activations,
            outcome.metrics.max_total_degree,
            tree.depth(),
            spec.time,
        );
    }

    println!(
        "(GraphToStar would be faster but needs a linear-degree hub — unusable as a P2P overlay.)"
    );
    let star = Experiment::on(graph)
        .uids(uids)
        .algorithm("graph_to_star")
        .run()?;
    println!(
        "GraphToStar       : rounds = {:4}, activations = {:6}, max degree during run = {:2} (!)",
        star.rounds, star.metrics.total_activations, star.metrics.max_total_degree
    );
    Ok(())
}
