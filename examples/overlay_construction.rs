//! Overlay-network construction scenario (Related Work, Section 1.4):
//! a peer-to-peer system starts from a sparse bounded-degree topology and
//! wants a low-diameter, bounded-degree overlay. GraphToWreath builds a
//! spanning complete binary tree (diameter O(log n)) while never exceeding
//! a constant activated degree — the property overlay networks care about.
//!
//! Run with: `cargo run --release --example overlay_construction`

use actively_dynamic_networks::prelude::*;

fn main() -> Result<(), CoreError> {
    let n = 512;
    // Bounded-degree peer topology: a ring with a few random chords.
    let graph = GraphFamily::BoundedDegreeConnected.generate(n, 7);
    let uids = UidMap::new(graph.node_count(), UidAssignment::RandomPermutation { seed: 7 });

    println!(
        "initial overlay : n = {}, max degree = {}, diameter = {:?}",
        graph.node_count(),
        graph.max_degree(),
        traversal::diameter(&graph)
    );

    for (name, outcome) in [
        ("GraphToWreath     ", run_graph_to_wreath(&graph, &uids)?),
        ("GraphToThinWreath ", run_graph_to_thin_wreath(&graph, &uids)?),
    ] {
        let tree = RootedTree::from_tree_graph(&outcome.final_graph, outcome.leader)
            .expect("final overlay is a spanning tree");
        println!(
            "{name}: rounds = {:4}, activations = {:6}, max degree during run = {:2}, final depth = {:2}",
            outcome.rounds,
            outcome.metrics.total_activations,
            outcome.metrics.max_total_degree,
            tree.depth(),
        );
    }

    println!("(GraphToStar would be faster but needs a linear-degree hub — unusable as a P2P overlay.)");
    let star = run_graph_to_star(&graph, &uids)?;
    println!(
        "GraphToStar       : rounds = {:4}, activations = {:6}, max degree during run = {:2} (!)",
        star.rounds, star.metrics.total_activations, star.metrics.max_total_degree
    );
    Ok(())
}
