//! Reconfigurable-robotics scenario (Section 1.4, "Programmable Matter"):
//! a swarm assembled as a 2-D grid must reorganise its communication
//! structure into a shallow command tree rooted at the highest-priority
//! robot, while every connection change is a physical link that costs
//! energy — exactly the paper's edge-complexity measures.
//!
//! The comparison sweeps the algorithm registry instead of naming each
//! strategy, so new registered algorithms show up automatically.
//!
//! Run with: `cargo run --release --example robot_swarm_reconfiguration`

use actively_dynamic_networks::prelude::*;

fn main() -> Result<(), CoreError> {
    // A 16 x 16 grid of robots.
    let graph = generators::grid(16, 16);
    let n = graph.node_count();
    println!(
        "swarm: {n} robots in a 16x16 grid, diameter {:?}",
        traversal::diameter(&graph)
    );

    // Compare every registered distributed strategy on the energy measures.
    let mut outcomes = Vec::new();
    for algorithm in registry() {
        let spec = algorithm.spec();
        if spec.centralized || !algorithm.supports(&graph) {
            continue; // robots have no global controller
        }
        let outcome = Experiment::on(graph.clone())
            .uids(UidAssignment::RandomPermutation { seed: 3 })
            .algorithm(spec.id)
            .run()?;
        outcomes.push((spec.name, outcome));
    }
    println!(
        "{:<18} {:>7} {:>12} {:>14} {:>10} {:>10}",
        "strategy", "rounds", "activations", "max act.edges", "max degree", "final diam"
    );
    for (name, o) in &outcomes {
        println!(
            "{:<18} {:>7} {:>12} {:>14} {:>10} {:>10}",
            name,
            o.rounds,
            o.metrics.total_activations,
            o.metrics.max_activated_edges,
            o.metrics.max_total_degree,
            o.final_diameter().map_or(-1i64, |d| d as i64),
        );
    }

    // The command tree: broadcast a "go" order from the elected leader of
    // the bounded-degree strategy (GraphToWreath).
    let (name, best) = outcomes
        .iter()
        .find(|(name, _)| *name == "GraphToWreath")
        .expect("GraphToWreath is registered");
    let broadcast = adn_core::tasks::convergecast_broadcast_rounds(&best.final_graph, best.leader)
        .expect("command tree is connected");
    println!("\nusing {name}: a command broadcast + acknowledgement takes {broadcast} rounds on the final tree");
    Ok(())
}
