//! Reconfigurable-robotics scenario (Section 1.4, "Programmable Matter"):
//! a swarm assembled as a 2-D grid must reorganise its communication
//! structure into a shallow command tree rooted at the highest-priority
//! robot, while every connection change is a physical link that costs
//! energy — exactly the paper's edge-complexity measures.
//!
//! Run with: `cargo run --release --example robot_swarm_reconfiguration`

use actively_dynamic_networks::prelude::*;

fn main() -> Result<(), CoreError> {
    // A 16 x 16 grid of robots.
    let graph = generators::grid(16, 16);
    let n = graph.node_count();
    let uids = UidMap::new(n, UidAssignment::RandomPermutation { seed: 3 });
    println!(
        "swarm: {n} robots in a 16x16 grid, diameter {:?}",
        traversal::diameter(&graph)
    );

    // Compare the three reconfiguration strategies and the clique
    // straw-man on the energy measures.
    let outcomes = vec![
        ("GraphToStar", run_graph_to_star(&graph, &uids)?),
        ("GraphToWreath", run_graph_to_wreath(&graph, &uids)?),
        ("GraphToThinWreath", run_graph_to_thin_wreath(&graph, &uids)?),
        ("CliqueFormation", run_clique_formation(&graph, &uids)?),
    ];
    println!(
        "{:<18} {:>7} {:>12} {:>14} {:>10} {:>10}",
        "strategy", "rounds", "activations", "max act.edges", "max degree", "final diam"
    );
    for (name, o) in &outcomes {
        println!(
            "{:<18} {:>7} {:>12} {:>14} {:>10} {:>10}",
            name,
            o.rounds,
            o.metrics.total_activations,
            o.metrics.max_activated_edges,
            o.metrics.max_total_degree,
            o.final_diameter().map_or(-1i64, |d| d as i64),
        );
    }

    // The command tree: broadcast a "go" order from the elected leader.
    let (name, best) = &outcomes[1];
    let broadcast =
        adn_core::tasks::convergecast_broadcast_rounds(&best.final_graph, best.leader)
            .expect("command tree is connected");
    println!("\nusing {name}: a command broadcast + acknowledgement takes {broadcast} rounds on the final tree");
    Ok(())
}
