//! Token dissemination (Section 2.2): every node must learn every other
//! node's token. Compares the no-reconfiguration baseline (flooding over
//! the initial network, Θ(diameter) rounds, zero activations) with the
//! reconfigure-then-disseminate composition of Section 1.3.
//!
//! Run with: `cargo run --release --example token_dissemination`

use actively_dynamic_networks::prelude::*;

fn main() -> Result<(), CoreError> {
    println!(
        "{:>6} {:>16} {:>26} {:>12}",
        "n", "flooding rounds", "transform+disseminate", "activations"
    );
    for n in [64usize, 128, 256, 512] {
        let graph = generators::line(n);
        let uids = UidMap::new(n, UidAssignment::RandomPermutation { seed: 11 });

        // The baseline is itself a registered algorithm now.
        let flood = Experiment::on(graph.clone())
            .uids(UidAssignment::RandomPermutation { seed: 11 })
            .algorithm("flooding")
            .run()?;
        assert_eq!(flood.metrics.total_activations, 0);
        assert!(flood.tokens_per_node.iter().all(|&t| t == n));

        let outcome = Experiment::on(graph)
            .uids(UidAssignment::RandomPermutation { seed: 11 })
            .algorithm("graph_to_star")
            .run()?;
        let report = disseminate_after_transformation(&outcome, &uids)?;
        let combined = report.transformation_rounds + report.dissemination_rounds;

        println!(
            "{:>6} {:>16} {:>26} {:>12}",
            n,
            flood.rounds,
            format!(
                "{combined} ({} + {})",
                report.transformation_rounds, report.dissemination_rounds
            ),
            report.metrics.total_activations
        );
    }
    println!("\nFlooding needs Θ(n) rounds on a line; paying Θ(n log n) activations buys an O(log n)-round solution.");
    Ok(())
}
